//! Passive monitoring: the DAG-card stand-in.
//!
//! The testbed's ground truth came from optical splitters feeding Endace DAG
//! capture cards on the ingress and egress of the bottleneck hop; comparing
//! the two traces identified exactly which packets were lost and what the
//! queue length was at every instant (§4.1). The simulator can do strictly
//! better: the bottleneck queue reports every enqueue, drop, and departure
//! to a [`Monitor`] together with the exact buffer occupancy.
//!
//! [`GroundTruth`] then derives the quantities the paper reports:
//!
//! * the queue-length time series (Figures 4, 5, 6, 8),
//! * router-centric loss rate `L/(S+L)` (§3),
//! * loss episodes — using the paper's delineation rule for bursty traffic:
//!   an episode is bounded by drops, and consecutive drops belong to the
//!   same episode only while the queue stays above a high-water delay
//!   threshold between them (§4.2's "within 10 ms of the maximum" rule),
//! * the slot-level congestion indicator series that defines the *true*
//!   episode frequency `F` and mean duration `D` targeted by the estimators.

use crate::packet::{FlowId, Packet};
use crate::time::SimTime;
use badabing_stats::{EpisodeSet, SlotSeries};
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::rc::Rc;

/// What happened to a packet at the bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Packet admitted to the buffer.
    Enqueue,
    /// Packet discarded because the buffer was full.
    Drop,
    /// Packet fully serialized onto the output link.
    Depart,
}

/// One captured packet event.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct TraceRecord {
    /// When the event occurred.
    pub t: SimTime,
    /// What happened.
    pub event: TraceEvent,
    /// The packet's globally unique id.
    pub packet_id: u64,
    /// Owning flow.
    pub flow: FlowId,
    /// Wire size in bytes.
    pub size: u32,
    /// Whether the packet is probe traffic.
    pub is_probe: bool,
    /// Buffer occupancy *after* the event, expressed as drain time in
    /// seconds (bytes × 8 / link rate) — the y-axis of the paper's queue
    /// length figures.
    pub qdelay_secs: f64,
}

/// Captures the bottleneck's packet-level event stream.
#[derive(Debug, Default)]
pub struct Monitor {
    records: Vec<TraceRecord>,
    drops: u64,
    departs: u64,
    enqueues: u64,
    probe_drops: u64,
}

/// Shared handle to a [`Monitor`]; held by the bottleneck queue and by the
/// experiment harness (the simulator is single-threaded, so `Rc<RefCell>`
/// is the right tool).
pub type MonitorHandle = Rc<RefCell<Monitor>>;

impl Monitor {
    /// A new, empty monitor behind a shared handle.
    pub fn new_handle() -> MonitorHandle {
        Rc::new(RefCell::new(Monitor::default()))
    }

    /// Record one event.
    pub fn record(&mut self, t: SimTime, event: TraceEvent, pkt: &Packet, qdelay_secs: f64) {
        match event {
            TraceEvent::Enqueue => self.enqueues += 1,
            TraceEvent::Drop => {
                self.drops += 1;
                if pkt.kind.is_probe() {
                    self.probe_drops += 1;
                }
            }
            TraceEvent::Depart => self.departs += 1,
        }
        self.records.push(TraceRecord {
            t,
            event,
            packet_id: pkt.id,
            flow: pkt.flow,
            size: pkt.size,
            is_probe: pkt.kind.is_probe(),
            qdelay_secs,
        });
    }

    /// All captured records, in event order.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Packets dropped at the bottleneck.
    pub fn drops(&self) -> u64 {
        self.drops
    }

    /// Probe packets dropped at the bottleneck.
    pub fn probe_drops(&self) -> u64 {
        self.probe_drops
    }

    /// Packets fully transmitted.
    pub fn departs(&self) -> u64 {
        self.departs
    }

    /// Packets admitted to the buffer.
    pub fn enqueues(&self) -> u64 {
        self.enqueues
    }

    /// Router-centric loss rate `L / (S + L)` (§3), with `S` the number of
    /// successfully transmitted packets.
    pub fn router_loss_rate(&self) -> f64 {
        let total = self.drops + self.departs;
        if total == 0 {
            0.0
        } else {
            self.drops as f64 / total as f64
        }
    }

    /// Discard all captured state (for long runs that only need counters
    /// going forward).
    pub fn clear_records(&mut self) {
        self.records.clear();
    }
}

/// Parameters controlling ground-truth episode extraction.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct GroundTruthConfig {
    /// Slot width in seconds for the congestion-indicator series (the
    /// paper's discretization, default 5 ms).
    pub slot_secs: f64,
    /// Queue drain-time capacity in seconds (the "100 milliseconds of
    /// packets" the testbed buffer held).
    pub queue_capacity_secs: f64,
    /// Fraction of capacity above which the queue counts as "at the
    /// high-water mark" when bridging consecutive drops into one episode
    /// (the paper used within 10 ms of a 100 ms maximum, i.e. 0.9).
    pub highwater_frac: f64,
}

impl Default for GroundTruthConfig {
    fn default() -> Self {
        Self {
            slot_secs: 0.005,
            queue_capacity_secs: 0.1,
            highwater_frac: 0.9,
        }
    }
}

/// A loss episode in continuous time, bounded by packet drops.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossEpisode {
    /// Time of the first drop of the episode.
    pub start: SimTime,
    /// Time of the last drop of the episode.
    pub end: SimTime,
    /// Number of packets dropped during the episode.
    pub drops: u64,
}

impl LossEpisode {
    /// Episode duration in seconds (zero for an isolated single drop).
    pub fn duration_secs(&self) -> f64 {
        self.end.since(self.start).as_secs_f64()
    }
}

/// Ground truth derived from a monitor trace over `[0, horizon)`.
#[derive(Debug, Clone)]
pub struct GroundTruth {
    /// Extraction parameters used.
    pub config: GroundTruthConfig,
    /// Continuous-time loss episodes.
    pub episodes: Vec<LossEpisode>,
    /// Slot-level congestion indicators (true episode coverage).
    pub congested: EpisodeSet,
    /// Per-slot maximum queue drain time in seconds.
    pub qdelay: SlotSeries,
    /// Router-centric loss rate over the horizon.
    pub router_loss_rate: f64,
}

impl GroundTruth {
    /// Extract ground truth from `monitor` for a run of length
    /// `horizon_secs`.
    pub fn extract(monitor: &Monitor, horizon_secs: f64, config: GroundTruthConfig) -> Self {
        let n_slots = (horizon_secs / config.slot_secs).round() as usize;
        let mut qdelay = SlotSeries::new(n_slots, config.slot_secs);
        for r in monitor.records() {
            qdelay.record_max(r.t.as_secs_f64(), r.qdelay_secs);
        }

        let highwater = config.highwater_frac * config.queue_capacity_secs;
        let mut episodes: Vec<LossEpisode> = Vec::new();
        let mut current: Option<LossEpisode> = None;
        // Tracks the minimum queue delay observed since the previous drop;
        // if the queue sagged below the high-water mark between two drops,
        // they belong to different episodes (the aggregate demand fell
        // below capacity in between — the paper's §3 episode-end rule).
        let mut min_qdelay_since_drop = f64::INFINITY;
        for r in monitor.records() {
            if r.t.as_secs_f64() >= horizon_secs {
                break;
            }
            match r.event {
                TraceEvent::Drop => {
                    match current.as_mut() {
                        Some(ep) if min_qdelay_since_drop >= highwater => {
                            ep.end = r.t;
                            ep.drops += 1;
                        }
                        Some(ep) => {
                            episodes.push(*ep);
                            current = Some(LossEpisode {
                                start: r.t,
                                end: r.t,
                                drops: 1,
                            });
                        }
                        None => {
                            current = Some(LossEpisode {
                                start: r.t,
                                end: r.t,
                                drops: 1,
                            });
                        }
                    }
                    min_qdelay_since_drop = f64::INFINITY;
                }
                TraceEvent::Enqueue | TraceEvent::Depart => {
                    min_qdelay_since_drop = min_qdelay_since_drop.min(r.qdelay_secs);
                }
            }
        }
        if let Some(ep) = current {
            episodes.push(ep);
        }

        // Slot indicator: a slot is congested if it overlaps an episode.
        let mut slots = vec![false; n_slots];
        for ep in &episodes {
            let first = (ep.start.as_secs_f64() / config.slot_secs) as usize;
            let last = (ep.end.as_secs_f64() / config.slot_secs) as usize;
            for s in slots
                .iter_mut()
                .take(last.min(n_slots - 1) + 1)
                .skip(first.min(n_slots))
            {
                *s = true;
            }
        }
        let congested = EpisodeSet::from_bools(&slots);

        Self {
            config,
            episodes,
            congested,
            qdelay,
            router_loss_rate: monitor.router_loss_rate(),
        }
    }

    /// True episode frequency `F`: fraction of congested slots.
    pub fn frequency(&self) -> f64 {
        self.congested.frequency()
    }

    /// True mean episode duration in seconds, from continuous-time episodes
    /// (one slot width is added to close the half-open drop interval, so an
    /// isolated drop contributes one slot rather than zero).
    pub fn mean_duration_secs(&self) -> f64 {
        if self.episodes.is_empty() {
            return 0.0;
        }
        let total: f64 = self
            .episodes
            .iter()
            .map(|e| e.duration_secs() + self.config.slot_secs)
            .sum();
        total / self.episodes.len() as f64
    }

    /// Mean loss-free period between consecutive episodes, in seconds
    /// (zero with fewer than two episodes).
    pub fn mean_loss_free_secs(&self) -> f64 {
        if self.episodes.len() < 2 {
            return 0.0;
        }
        let total: f64 = self
            .episodes
            .windows(2)
            .map(|w| w[1].start.since(w[0].end).as_secs_f64())
            .sum();
        total / (self.episodes.len() - 1) as f64
    }

    /// Standard deviation of episode durations in seconds.
    pub fn std_duration_secs(&self) -> f64 {
        if self.episodes.len() < 2 {
            return 0.0;
        }
        let mean = self.mean_duration_secs();
        let var = self
            .episodes
            .iter()
            .map(|e| {
                let d = e.duration_secs() + self.config.slot_secs - mean;
                d * d
            })
            .sum::<f64>()
            / self.episodes.len() as f64;
        var.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::packet::PacketKind;

    fn pkt(id: u64, probe: bool) -> Packet {
        Packet {
            id,
            flow: FlowId(if probe { 99 } else { 1 }),
            size: 1500,
            created: SimTime::ZERO,
            kind: if probe {
                PacketKind::Probe {
                    experiment: 0,
                    slot: 0,
                    idx: 0,
                    probe_len: 1,
                    seq: id,
                }
            } else {
                PacketKind::Udp { seq: id }
            },
        }
    }

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    #[test]
    fn counters_and_loss_rate() {
        let mut m = Monitor::default();
        m.record(t(0.0), TraceEvent::Enqueue, &pkt(0, false), 0.01);
        m.record(t(0.1), TraceEvent::Depart, &pkt(0, false), 0.0);
        m.record(t(0.2), TraceEvent::Drop, &pkt(1, false), 0.1);
        m.record(t(0.3), TraceEvent::Drop, &pkt(2, true), 0.1);
        assert_eq!(m.enqueues(), 1);
        assert_eq!(m.departs(), 1);
        assert_eq!(m.drops(), 2);
        assert_eq!(m.probe_drops(), 1);
        assert!((m.router_loss_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empty_monitor_loss_rate_is_zero() {
        assert_eq!(Monitor::default().router_loss_rate(), 0.0);
    }

    #[test]
    fn drops_bridged_while_queue_stays_high() {
        let mut m = Monitor::default();
        // Queue rises, a cluster of drops with queue pinned at capacity.
        m.record(t(0.010), TraceEvent::Enqueue, &pkt(0, false), 0.095);
        m.record(t(0.020), TraceEvent::Drop, &pkt(1, false), 0.100);
        m.record(t(0.025), TraceEvent::Enqueue, &pkt(2, false), 0.099);
        m.record(t(0.040), TraceEvent::Drop, &pkt(3, false), 0.100);
        // Queue drains well below high water, then a second episode.
        m.record(t(0.100), TraceEvent::Depart, &pkt(0, false), 0.020);
        m.record(t(0.300), TraceEvent::Drop, &pkt(4, false), 0.100);
        let gt = GroundTruth::extract(&m, 1.0, GroundTruthConfig::default());
        assert_eq!(gt.episodes.len(), 2);
        assert_eq!(gt.episodes[0].drops, 2);
        assert!((gt.episodes[0].duration_secs() - 0.020).abs() < 1e-9);
        assert_eq!(gt.episodes[1].drops, 1);
        assert_eq!(gt.episodes[1].duration_secs(), 0.0);
    }

    #[test]
    fn isolated_drop_counts_one_slot() {
        let mut m = Monitor::default();
        m.record(t(0.0521), TraceEvent::Drop, &pkt(0, false), 0.1);
        let gt = GroundTruth::extract(&m, 1.0, GroundTruthConfig::default());
        assert_eq!(gt.episodes.len(), 1);
        assert_eq!(gt.congested.count(), 1);
        assert_eq!(gt.congested.congested_slots(), 1);
        // Frequency: 1 congested slot of 200.
        assert!((gt.frequency() - 1.0 / 200.0).abs() < 1e-12);
        assert!((gt.mean_duration_secs() - 0.005).abs() < 1e-12);
    }

    #[test]
    fn slot_indicator_covers_episode_span() {
        let mut m = Monitor::default();
        m.record(t(0.010), TraceEvent::Drop, &pkt(0, false), 0.1);
        m.record(t(0.011), TraceEvent::Enqueue, &pkt(1, false), 0.099);
        m.record(t(0.032), TraceEvent::Drop, &pkt(2, false), 0.1);
        let gt = GroundTruth::extract(&m, 0.1, GroundTruthConfig::default());
        // Episode spans 10ms..32ms → slots 2..=6 congested.
        assert_eq!(gt.congested.count(), 1);
        assert_eq!(gt.congested.episodes()[0].start, 2);
        assert_eq!(gt.congested.episodes()[0].end, 7);
    }

    #[test]
    fn qdelay_series_tracks_maxima() {
        let mut m = Monitor::default();
        m.record(t(0.001), TraceEvent::Enqueue, &pkt(0, false), 0.02);
        m.record(t(0.002), TraceEvent::Enqueue, &pkt(1, false), 0.05);
        m.record(t(0.007), TraceEvent::Depart, &pkt(0, false), 0.03);
        let gt = GroundTruth::extract(&m, 0.02, GroundTruthConfig::default());
        assert_eq!(gt.qdelay.len(), 4);
        assert!((gt.qdelay.values()[0] - 0.05).abs() < 1e-12);
        assert!((gt.qdelay.values()[1] - 0.03).abs() < 1e-12);
    }

    #[test]
    fn loss_free_period_between_episodes() {
        let mut m = Monitor::default();
        m.record(t(0.10), TraceEvent::Drop, &pkt(0, false), 0.1);
        m.record(t(0.50), TraceEvent::Drop, &pkt(1, false), 0.1);
        m.record(t(1.10), TraceEvent::Drop, &pkt(2, false), 0.1);
        // Queue drains to zero between the drops → three episodes with
        // gaps of 0.4 and 0.6 s: mean 0.5.
        m.record(t(0.2), TraceEvent::Depart, &pkt(0, false), 0.0);
        m.record(t(0.6), TraceEvent::Depart, &pkt(1, false), 0.0);
        let mut records = std::mem::take(&mut m.records);
        records.sort_by_key(|r| r.t);
        m.records = records;
        let gt = GroundTruth::extract(&m, 2.0, GroundTruthConfig::default());
        assert_eq!(gt.episodes.len(), 3);
        assert!((gt.mean_loss_free_secs() - 0.5).abs() < 1e-9);
        // Single episode → zero.
        let mut m2 = Monitor::default();
        m2.record(t(0.1), TraceEvent::Drop, &pkt(0, false), 0.1);
        let gt2 = GroundTruth::extract(&m2, 1.0, GroundTruthConfig::default());
        assert_eq!(gt2.mean_loss_free_secs(), 0.0);
    }

    #[test]
    fn events_beyond_horizon_are_ignored_for_episodes() {
        let mut m = Monitor::default();
        m.record(t(0.5), TraceEvent::Drop, &pkt(0, false), 0.1);
        m.record(t(2.0), TraceEvent::Drop, &pkt(1, false), 0.1);
        let gt = GroundTruth::extract(&m, 1.0, GroundTruthConfig::default());
        assert_eq!(gt.episodes.len(), 1);
    }

    #[test]
    fn no_drops_means_no_episodes() {
        let mut m = Monitor::default();
        m.record(t(0.1), TraceEvent::Enqueue, &pkt(0, false), 0.01);
        m.record(t(0.2), TraceEvent::Depart, &pkt(0, false), 0.0);
        let gt = GroundTruth::extract(&m, 1.0, GroundTruthConfig::default());
        assert!(gt.episodes.is_empty());
        assert_eq!(gt.frequency(), 0.0);
        assert_eq!(gt.mean_duration_secs(), 0.0);
        assert_eq!(gt.std_duration_secs(), 0.0);
    }
}
