//! Property tests: packet conservation and trace consistency.
//!
//! Whatever the traffic pattern, the bottleneck must conserve packets
//! (enqueued = departed + still queued), the monitor's counters must
//! match its trace, and queue occupancy implied by the trace must never
//! exceed capacity.

use badabing_sim::engine::Simulator;
use badabing_sim::monitor::{Monitor, TraceEvent};
use badabing_sim::node::{Context, CountingSink, Node, NodeId};
use badabing_sim::packet::{FlowId, Packet, PacketKind};
use badabing_sim::queue::DropTailQueue;
use badabing_sim::time::SimDuration;
use proptest::prelude::*;
use std::any::Any;

/// Sends scripted (delay_us, size) packets into a destination.
struct Script {
    dst: NodeId,
    packets: Vec<(u64, u32)>,
    cursor: usize,
}

impl Node for Script {
    fn start(&mut self, ctx: &mut Context<'_>) {
        if !self.packets.is_empty() {
            ctx.set_timer(SimDuration::from_micros(self.packets[0].0), 0);
        }
    }
    fn on_packet(&mut self, _p: Packet, _c: &mut Context<'_>) {}
    fn on_timer(&mut self, _t: u64, ctx: &mut Context<'_>) {
        let (_, size) = self.packets[self.cursor];
        let pkt = Packet {
            id: ctx.next_packet_id(),
            flow: FlowId(1),
            size,
            created: ctx.now(),
            kind: PacketKind::Udp {
                seq: self.cursor as u64,
            },
        };
        ctx.send(self.dst, pkt, SimDuration::ZERO);
        self.cursor += 1;
        if let Some(&(gap, _)) = self.packets.get(self.cursor) {
            ctx.set_timer(SimDuration::from_micros(gap), 0);
        }
    }
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn queue_conserves_packets(
        packets in proptest::collection::vec((0u64..500, 40u32..1600), 1..300),
        capacity in 2_000u64..50_000,
        rate_mbps in 1u64..100,
    ) {
        let total = packets.len() as u64;
        let mut sim = Simulator::new();
        let monitor = Monitor::new_traced_handle();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        let q = sim.add_node(Box::new(
            DropTailQueue::new(rate_mbps * 1_000_000, capacity, sink, SimDuration::ZERO)
                .with_monitor(monitor.clone()),
        ));
        sim.add_node(Box::new(Script { dst: q, packets, cursor: 0 }));
        sim.run_to_completion();

        let m = monitor.borrow();
        // Everything offered was either enqueued or dropped...
        prop_assert_eq!(m.enqueues() + m.drops(), total);
        // ...and with the run complete, everything enqueued departed.
        prop_assert_eq!(m.departs(), m.enqueues());
        prop_assert_eq!(sim.node::<CountingSink>(sink).received(), m.departs());
        // Trace-event counts match the counters.
        let (mut enq, mut dep, mut drop) = (0u64, 0u64, 0u64);
        for r in m.records() {
            match r.event {
                TraceEvent::Enqueue => enq += 1,
                TraceEvent::Depart => dep += 1,
                TraceEvent::Drop => drop += 1,
            }
            // Occupancy implied by the trace stays within capacity.
            let cap_secs = capacity as f64 * 8.0 / (rate_mbps as f64 * 1e6);
            prop_assert!(r.qdelay_secs <= cap_secs + 1e-9);
        }
        prop_assert_eq!((enq, dep, drop), (m.enqueues(), m.departs(), m.drops()));
        // Trace times are non-decreasing.
        prop_assert!(m.records().windows(2).all(|w| w[0].t <= w[1].t));
    }

    #[test]
    fn fifo_order_is_preserved(
        packets in proptest::collection::vec((0u64..200, 100u32..1500), 2..100),
    ) {
        // With a huge buffer nothing drops; departures must preserve
        // arrival order (drop-tail FIFO).
        let mut sim = Simulator::new();
        let monitor = Monitor::new_traced_handle();
        let sink = sim.add_node(Box::new(CountingSink::new()));
        let q = sim.add_node(Box::new(
            DropTailQueue::new(10_000_000, 10_000_000, sink, SimDuration::ZERO)
                .with_monitor(monitor.clone()),
        ));
        sim.add_node(Box::new(Script { dst: q, packets, cursor: 0 }));
        sim.run_to_completion();
        let m = monitor.borrow();
        let departures: Vec<u64> = m
            .records()
            .iter()
            .filter(|r| r.event == TraceEvent::Depart)
            .map(|r| r.packet_id)
            .collect();
        let mut sorted = departures.clone();
        sorted.sort_unstable();
        prop_assert_eq!(departures, sorted, "drop-tail FIFO must not reorder");
    }
}
