//! Differential determinism tests.
//!
//! Two independent equivalences guard the perf refactors:
//!
//! * **Monitor modes** — a seeded run observed by a streaming monitor and
//!   the same run observed by a full-trace monitor must produce the exact
//!   same `GroundTruth` (episodes, congested slots, qdelay series, loss
//!   rate). Exact `f64` equality, not tolerance: both paths perform the
//!   same comparison/min sequence, so any drift is a bug.
//! * **Event engines** — the heap and calendar engines must dispatch the
//!   same events in the same order. Checked end to end: identical
//!   `dispatched()` counts and ground truth per scenario, and
//!   byte-identical CSV from a full seeded table binary.

use badabing_bench::scenarios::{self, Scenario};
use badabing_bench::RunOpts;
use badabing_sim::{set_default_queue_kind, GroundTruth, GroundTruthConfig, QueueKind};
use std::sync::Mutex;

/// Serializes the tests that flip the process-wide engine default, so a
/// concurrently running test never observes a half-switched state.
static ENGINE_LOCK: Mutex<()> = Mutex::new(());

/// Run `scenario` for `secs` on the current default engine and return
/// (ground truth via the requested monitor mode, events dispatched).
fn run(scenario: Scenario, seed: u64, secs: f64, trace: bool) -> (GroundTruth, u64) {
    let mut db = scenarios::build_with(scenario, seed, trace);
    db.run_for(secs + 1.0);
    (db.ground_truth(secs), db.sim.dispatched())
}

fn assert_truth_eq(a: &GroundTruth, b: &GroundTruth, what: &str) {
    assert_eq!(a.episodes, b.episodes, "{what}: episodes differ");
    assert_eq!(
        a.congested.episodes(),
        b.congested.episodes(),
        "{what}: congested slots differ"
    );
    assert_eq!(
        a.qdelay.values(),
        b.qdelay.values(),
        "{what}: qdelay series differ"
    );
    assert_eq!(
        a.router_loss_rate, b.router_loss_rate,
        "{what}: loss rate differs"
    );
}

#[test]
fn streaming_and_trace_monitors_agree_on_seeded_scenarios() {
    for scenario in [Scenario::CbrUniform, Scenario::InfiniteTcp, Scenario::Web] {
        let (streamed, ev_s) = run(scenario, 20050821, 20.0, false);
        let (traced, ev_t) = run(scenario, 20050821, 20.0, true);
        assert_eq!(ev_s, ev_t, "{}: event counts differ", scenario.label());
        assert_truth_eq(&traced, &streamed, scenario.label());
        assert!(
            !streamed.episodes.is_empty(),
            "{}: want a run with loss for a meaningful comparison",
            scenario.label()
        );
    }
}

#[test]
fn trace_monitor_agrees_at_every_horizon() {
    // The streaming fold reconstructs ground truth for ANY horizon ≤ now,
    // not just the one it would have been configured for.
    let mut db = scenarios::build_with(Scenario::CbrUniform, 7, true);
    db.run_for(21.0);
    let handle = db.monitor();
    let m = handle.borrow();
    let cfg = GroundTruthConfig {
        queue_capacity_secs: db.config().buffer_secs,
        ..Default::default()
    };
    for horizon in [0.5, 5.0, 12.25, 20.0] {
        let traced = GroundTruth::from_trace(&m, horizon, cfg);
        let streamed = m.ground_truth(horizon, cfg);
        assert_truth_eq(&traced, &streamed, &format!("horizon {horizon}"));
    }
}

#[test]
fn heap_and_calendar_engines_dispatch_identically() {
    let _guard = ENGINE_LOCK.lock().unwrap();
    for scenario in [Scenario::CbrUniform, Scenario::Web] {
        set_default_queue_kind(Some(QueueKind::Heap));
        let (heap_truth, heap_events) = run(scenario, 99, 15.0, false);
        set_default_queue_kind(Some(QueueKind::Calendar));
        let (cal_truth, cal_events) = run(scenario, 99, 15.0, false);
        set_default_queue_kind(None);
        assert_eq!(
            heap_events,
            cal_events,
            "{}: dispatched() differs between engines",
            scenario.label()
        );
        assert_truth_eq(&heap_truth, &cal_truth, scenario.label());
    }
}

#[test]
fn engines_produce_byte_identical_table_csv() {
    // Full seeded table binary through both engines: the CSV mirrors must
    // match byte for byte. Runs print_zing_table in-process with distinct
    // temp out paths.
    let _guard = ENGINE_LOCK.lock().unwrap();
    let dir = std::env::temp_dir().join(format!("badabing-diff-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let mut csv = Vec::new();
    for (kind, label) in [(QueueKind::Heap, "heap"), (QueueKind::Calendar, "calendar")] {
        set_default_queue_kind(Some(kind));
        let out = dir.join(format!("tab2-{label}.csv"));
        let opts = RunOpts {
            quick: true,
            out: Some(out.clone()),
            threads: Some(2),
            ..RunOpts::default()
        };
        badabing_bench::runs::print_zing_table(
            Scenario::CbrUniform,
            &opts,
            180.0,
            30.0,
            "diff_tab2",
            "differential tab2",
        );
        csv.push(std::fs::read(&out).unwrap());
    }
    set_default_queue_kind(None);
    assert!(!csv[0].is_empty(), "table CSV must not be empty");
    assert_eq!(csv[0], csv[1], "table CSV bytes differ between engines");
    let _ = std::fs::remove_dir_all(&dir);
}
