//! Criterion microbenchmarks for the hot paths.
//!
//! The experiment binaries under `src/bin/` regenerate the paper's tables
//! and figures; these benches track the cost of the machinery itself:
//! estimator reduction, detector marking, ground-truth extraction, the
//! event engine, the experiment scheduler, and the wire codec.

use badabing_bench::scenarios::{self, Scenario};
use badabing_core::detector::{CongestionDetector, ProbeObservation};
use badabing_core::estimator::Estimates;
use badabing_core::outcome::{ExperimentLog, Outcome};
use badabing_core::schedule::ExperimentScheduler;
use badabing_core::validate::Validation;
use badabing_sim::event::{EventQueue, QueueKind};
use badabing_sim::monitor::{Monitor, TraceEvent};
use badabing_sim::topology::Dumbbell;
use badabing_sim::{set_default_queue_kind, Event, FlowId, NodeId, Packet, PacketKind, SimTime};
use badabing_stats::rng::seeded;
use badabing_stats::runs::EpisodeSet;
use badabing_wire::ProbeHeader;
use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use rand::RngExt;
use std::hint::black_box;

fn synthetic_log(n: usize) -> ExperimentLog {
    let mut rng = seeded(1, "bench-log");
    let mut log = ExperimentLog::new(n as u64 * 4, 0.005);
    for i in 0..n {
        let congested = rng.random::<f64>() < 0.01;
        let o = if i % 2 == 0 {
            Outcome::basic(i as u64, i as u64 * 3, congested, congested)
        } else {
            Outcome::extended(i as u64, i as u64 * 3, congested, congested, false)
        };
        log.push(o);
    }
    log
}

fn synthetic_observations(n: usize) -> Vec<ProbeObservation> {
    let mut rng = seeded(2, "bench-obs");
    (0..n)
        .map(|i| {
            let lost = rng.random::<f64>() < 0.01;
            ProbeObservation {
                experiment: i as u64 / 2,
                slot: i as u64,
                send_time_secs: i as f64 * 0.005,
                packets_sent: 3,
                packets_lost: u8::from(lost),
                owd_last_secs: Some(0.05 + rng.random::<f64>() * 0.1),
                owd_max_secs: Some(0.05 + rng.random::<f64>() * 0.1),
            }
        })
        .collect()
}

fn bench_estimator(c: &mut Criterion) {
    let log = synthetic_log(100_000);
    let mut g = c.benchmark_group("estimator");
    g.throughput(Throughput::Elements(log.len() as u64));
    g.bench_function("estimates_from_log_100k", |b| {
        b.iter(|| Estimates::from_log(black_box(&log)))
    });
    g.bench_function("validation_from_log_100k", |b| {
        b.iter(|| Validation::from_log(black_box(&log)))
    });
    g.finish();
}

fn bench_detector(c: &mut Criterion) {
    let obs = synthetic_observations(100_000);
    let det = CongestionDetector::with_params(0.1, 0.08, 5);
    let mut g = c.benchmark_group("detector");
    g.throughput(Throughput::Elements(obs.len() as u64));
    g.bench_function("mark_100k_probes", |b| b.iter(|| det.mark(black_box(&obs))));
    g.bench_function("assemble_100k_probes", |b| {
        b.iter(|| det.assemble(black_box(&obs), 400_000, 0.005))
    });
    g.finish();
}

fn bench_episode_extraction(c: &mut Criterion) {
    let mut rng = seeded(3, "bench-episodes");
    let slots: Vec<bool> = (0..1_000_000).map(|_| rng.random::<f64>() < 0.01).collect();
    let mut g = c.benchmark_group("ground_truth");
    g.throughput(Throughput::Elements(slots.len() as u64));
    g.bench_function("episode_set_from_1m_slots", |b| {
        b.iter(|| EpisodeSet::from_bools(black_box(&slots)))
    });
    g.finish();
}

fn bench_scheduler(c: &mut Criterion) {
    let mut g = c.benchmark_group("scheduler");
    g.throughput(Throughput::Elements(180_000));
    g.bench_function("plan_180k_slots_p03", |b| {
        b.iter_batched(
            || ExperimentScheduler::new(0.3, true, seeded(4, "bench-sched")),
            |mut s| s.take_run(black_box(180_000)),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    // 10 virtual seconds of the CBR scenario end to end — event loop,
    // queue, monitor — on each event engine.
    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for (label, kind) in [
        ("cbr_scenario_10s_heap", QueueKind::Heap),
        ("cbr_scenario_10s_calendar", QueueKind::Calendar),
    ] {
        g.bench_function(label, |b| {
            b.iter(|| {
                set_default_queue_kind(Some(kind));
                let mut db = Dumbbell::standard();
                scenarios::attach(&mut db, Scenario::CbrUniform, 5);
                db.run_for(10.0);
                set_default_queue_kind(None);
                black_box(db.monitor().borrow().drops())
            })
        });
    }
    g.finish();
}

fn bench_event_queue(c: &mut Criterion) {
    // The mixed push/pop workload the dispatch loop actually generates:
    // hold ~WORKING_SET pending events (the TCP scenarios run at three
    // to four thousand), each pop scheduling a successor drawn from the
    // simulator's delay mix — mostly sub-100 µs serialization and
    // propagation gaps, a broad band of RTT-scale acks and timers, and
    // rare second-scale timers. `engine_race` runs the same workload as
    // an interleaved paired race for noise-resistant A/B numbers.
    const WORKING_SET: usize = 4_096;
    const OPS: usize = 100_000;
    let mut g = c.benchmark_group("event_queue");
    g.throughput(Throughput::Elements(OPS as u64));
    for (label, kind) in [
        ("mixed_100k_heap", QueueKind::Heap),
        ("mixed_100k_calendar", QueueKind::Calendar),
    ] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    let mut q = EventQueue::with_kind(kind);
                    let mut rng = seeded(7, "bench-eventq");
                    for i in 0..WORKING_SET {
                        let at = SimTime::from_nanos(rng.random::<u64>() % 2_000_000);
                        q.push(at, NodeId(i % 16), Event::Timer(i as u64));
                    }
                    (q, rng)
                },
                |(mut q, mut rng)| {
                    for i in 0..OPS {
                        let (now, _, _) = q.pop().expect("queue never drains");
                        let r = rng.random::<u64>();
                        let delay = if i % 64 == 0 {
                            2_000_000_000 + r % 1_000_000_000
                        } else if i % 8 < 5 {
                            r % 100_000
                        } else {
                            1_000_000 + r % 59_000_000
                        };
                        q.push(
                            SimTime::from_nanos(now.as_nanos() + delay),
                            NodeId(i % 16),
                            Event::Timer(i as u64),
                        );
                    }
                    black_box(q.len())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_monitor(c: &mut Criterion) {
    // Pure monitor record cost: streaming fold vs full-trace retention.
    const EVENTS: usize = 100_000;
    let mut g = c.benchmark_group("monitor");
    g.throughput(Throughput::Elements(EVENTS as u64));
    let pkt = Packet {
        id: 1,
        flow: FlowId(1),
        size: 1500,
        created: SimTime::ZERO,
        kind: PacketKind::Udp { seq: 0 },
    };
    for (label, trace) in [
        ("record_100k_streaming", false),
        ("record_100k_trace", true),
    ] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    if trace {
                        Monitor::with_trace()
                    } else {
                        Monitor::default()
                    }
                },
                |mut m| {
                    for i in 0..EVENTS {
                        let t = SimTime::from_nanos(i as u64 * 40_000);
                        let qd = 0.02 + (i % 100) as f64 * 0.0005;
                        let ev = match i % 50 {
                            49 => TraceEvent::Drop,
                            n if n % 2 == 0 => TraceEvent::Enqueue,
                            _ => TraceEvent::Depart,
                        };
                        m.record(t, ev, &pkt, qd);
                    }
                    black_box(m.peak_bytes())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_wire(c: &mut Criterion) {
    let h = ProbeHeader {
        session: 1,
        experiment: 42,
        slot: 77,
        seq: 1000,
        send_ns: 123_456_789,
        idx: 1,
        probe_len: 3,
    };
    let encoded = h.encode(600);
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Elements(1));
    g.bench_function("encode_600b", |b| b.iter(|| black_box(&h).encode(600)));
    g.bench_function("decode_600b", |b| {
        b.iter(|| ProbeHeader::decode(black_box(&encoded)))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_estimator,
    bench_detector,
    bench_episode_extraction,
    bench_scheduler,
    bench_engine,
    bench_event_queue,
    bench_monitor,
    bench_wire
);
criterion_main!(benches);
