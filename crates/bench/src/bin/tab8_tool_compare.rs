//! Table 8: BADABING vs ZING at matched probe load, under CBR and
//! web-like traffic.
//!
//! The paper matches ZING's rate to BADABING's link utilization at
//! p = 0.3 with 600-byte packets and finds BADABING far closer to truth
//! on both frequency and duration. We match ZING to the *measured*
//! BADABING load of this implementation (the §5 process sends two probes
//! per experiment, about twice the load accounting the paper quotes —
//! see EXPERIMENTS.md), which if anything favours ZING.
//!
//! The two scenarios run as parallel runner jobs; within a job the ZING
//! run must wait for the BADABING run, whose measured load sets its rate.

use badabing_bench::runner;
use badabing_bench::runs::{run_badabing, run_zing, slots_for};
use badabing_bench::scenarios::Scenario;
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_core::config::BadabingConfig;
use badabing_probe::report::ToolReport;
use badabing_probe::zing::ZingConfig;

struct ScenarioPoint {
    load_bps: f64,
    rate_hz: f64,
    rows: [ToolReport; 4],
}

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(900.0, 120.0);
    let scenarios = [Scenario::CbrUniform, Scenario::Web];

    let res = runner::run_jobs(opts.effective_threads(), &scenarios, |&scenario| {
        let cfg = BadabingConfig::paper_default(0.3);
        let n_slots = slots_for(secs, cfg.slot_secs);
        let bb = run_badabing(scenario, cfg, n_slots, opts.seed);
        let bb_events = bb.db.sim.dispatched();

        // Match ZING to the load BADABING actually offered.
        let zcfg = ZingConfig::with_load_bps(600, bb.load_bps);
        let z = run_zing(scenario, &[zcfg], secs, opts.seed);

        let point = ScenarioPoint {
            load_bps: bb.load_bps,
            rate_hz: zcfg.rate_hz,
            rows: [
                ToolReport::from_truth("true values (badabing run)", &bb.truth),
                ToolReport::from_badabing("badabing (p=0.3)", &bb.analysis),
                ToolReport::from_truth("true values (zing run)", &z.truth),
                ToolReport::from_zing("zing (rate-matched)", &z.reports[0]),
            ],
        };
        (point, bb_events + z.events)
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("tab8_tool_compare"));
    w.heading(&format!(
        "Table 8: BADABING (p=0.3) vs rate-matched ZING ({secs:.0}s)"
    ));
    w.csv("scenario,source,frequency,duration_mean_secs,duration_std_secs");

    for (scenario, point) in scenarios.iter().zip(&points) {
        w.row(&format!(
            "--- {} (badabing load {:.0} kb/s, zing {:.1} probes/s) ---",
            scenario.label(),
            point.load_bps / 1000.0,
            point.rate_hz
        ));
        w.row(&ToolReport::header());
        for r in &point.rows {
            w.row(&r.fmt_row());
            w.csv(&format!("{},{}", scenario.label(), r.csv_row()));
        }
    }
    println!("{stat_line}");
    w.finish();
}
