//! Extension: per-episode detection quality across probe rates.
//!
//! The paper's tables evaluate aggregate estimates; this experiment asks
//! the per-episode question — of the episodes that happened, how many did
//! the tool see (recall), how much congestion did it invent (slot
//! precision), and how much of the p = 0.1 failure is probe sparsity vs
//! detector error (recall-given-probed separates them).
//!
//! Each probe rate is an independent runner job.

use badabing_bench::runner;
use badabing_bench::runs::{run_badabing, slots_for, P_SWEEP};
use badabing_bench::scenarios::Scenario;
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_core::config::BadabingConfig;
use badabing_probe::coverage::EpisodeCoverage;

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(900.0, 120.0);

    let res = runner::run_jobs(opts.effective_threads(), &P_SWEEP, |&p| {
        let cfg = BadabingConfig::paper_default(p);
        let n_slots = slots_for(secs, cfg.slot_secs);
        let run = run_badabing(Scenario::CbrUniform, cfg, n_slots, opts.seed);
        let events = run.db.sim.dispatched();
        (
            EpisodeCoverage::compute(&run.analysis.log, &run.truth, 2),
            events,
        )
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("episode_coverage"));
    w.heading(&format!(
        "Per-episode detection quality ({secs:.0}s CBR per p)"
    ));
    w.row(&format!(
        "{:>4} {:>9} {:>9} {:>9} {:>9} {:>11} {:>12}",
        "p", "episodes", "probed", "detected", "recall", "rec|probed", "precision"
    ));
    w.csv("p,episodes_total,episodes_probed,episodes_detected,recall,recall_given_probed,precision,mean_onset_error_slots");

    for (p, c) in P_SWEEP.iter().zip(&points) {
        w.row(&format!(
            "{:>4.1} {:>9} {:>9} {:>9} {:>9.2} {:>11.2} {:>12.2}",
            p,
            c.episodes_total,
            c.episodes_probed,
            c.episodes_detected,
            c.recall(),
            c.recall_given_probed(),
            c.precision()
        ));
        w.csv(&format!(
            "{p},{},{},{},{},{},{},{}",
            c.episodes_total,
            c.episodes_probed,
            c.episodes_detected,
            c.recall(),
            c.recall_given_probed(),
            c.precision(),
            c.mean_onset_error_slots
        ));
    }
    w.row("(recall vs recall-given-probed separates probe sparsity from detector misses;");
    w.row(" precision measures over-marking around episode edges, worst at small p where");
    w.row(" tau is widest)");
    println!("{stat_line}");
    w.finish();
}
