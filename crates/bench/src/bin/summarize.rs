//! Collate `results/full_run.log` into a one-page digest
//! (`results/SUMMARY.md`): the headline rows of every experiment, in
//! order, ready to paste into a report.

use std::fmt::Write as _;
use std::fs;
use std::path::Path;

fn main() {
    let log_path = Path::new("results/full_run.log");
    let Ok(log) = fs::read_to_string(log_path) else {
        eprintln!("results/full_run.log not found — run ./run_experiments.sh first");
        std::process::exit(1);
    };

    let mut out = String::new();
    let _ = writeln!(out, "# Experiment digest\n");
    let _ = writeln!(
        out,
        "Generated from `results/full_run.log` by `summarize`.\n"
    );

    let mut in_block = false;
    for line in log.lines() {
        if line.starts_with("=== running ") {
            continue;
        }
        if let Some(title) = line
            .strip_prefix("=== ")
            .and_then(|l| l.strip_suffix(" ==="))
        {
            let _ = writeln!(out, "\n## {title}\n");
            let _ = writeln!(out, "```text");
            in_block = true;
            continue;
        }
        if line.starts_with("[csv written")
            || line.starts_with("[runner:")
            || line.starts_with('[') && line.contains("took")
        {
            if in_block {
                let _ = writeln!(out, "```");
                in_block = false;
            }
            if line.starts_with("[runner:") || line.contains("took") {
                let _ = writeln!(out, "_{}_", line.trim_matches(['[', ']']));
            }
            continue;
        }
        if in_block && !line.trim().is_empty() {
            let _ = writeln!(out, "{line}");
        }
    }
    if in_block {
        let _ = writeln!(out, "```");
    }

    let dest = Path::new("results/SUMMARY.md");
    if let Err(e) = fs::write(dest, &out) {
        eprintln!("cannot write {}: {e}", dest.display());
        std::process::exit(1);
    }
    println!("wrote {} ({} lines)", dest.display(), out.lines().count());
}
