//! Collate `results/full_run.log` into a one-page digest
//! (`results/SUMMARY.md`): the headline rows of every experiment, in
//! order, ready to paste into a report, followed by a run-metrics
//! section folded from the `results/metrics/*.json` snapshots the
//! experiment binaries (and any live-tool run pointed there) emit.

use badabing_metrics::json::{parse, Value};
use std::fmt::Write as _;
use std::fs;
use std::path::Path;

fn main() {
    let log_path = Path::new("results/full_run.log");
    let Ok(log) = fs::read_to_string(log_path) else {
        eprintln!("results/full_run.log not found — run ./run_experiments.sh first");
        std::process::exit(1);
    };

    let mut out = String::new();
    let _ = writeln!(out, "# Experiment digest\n");
    let _ = writeln!(
        out,
        "Generated from `results/full_run.log` by `summarize`.\n"
    );

    let mut in_block = false;
    for line in log.lines() {
        if line.starts_with("=== running ") {
            continue;
        }
        if let Some(title) = line
            .strip_prefix("=== ")
            .and_then(|l| l.strip_suffix(" ==="))
        {
            let _ = writeln!(out, "\n## {title}\n");
            let _ = writeln!(out, "```text");
            in_block = true;
            continue;
        }
        if line.starts_with("[csv written")
            || line.starts_with("[runner:")
            || line.starts_with("[metrics:")
            || line.starts_with('[') && line.contains("took")
        {
            if in_block {
                let _ = writeln!(out, "```");
                in_block = false;
            }
            if line.starts_with("[runner:") || line.contains("took") {
                let _ = writeln!(out, "_{}_", line.trim_matches(['[', ']']));
            }
            continue;
        }
        if in_block && !line.trim().is_empty() {
            let _ = writeln!(out, "{line}");
        }
    }
    if in_block {
        let _ = writeln!(out, "```");
    }

    append_metrics_section(&mut out, Path::new("results/metrics"));

    let dest = Path::new("results/SUMMARY.md");
    if let Err(e) = fs::write(dest, &out) {
        eprintln!("cannot write {}: {e}", dest.display());
        std::process::exit(1);
    }
    println!("wrote {} ({} lines)", dest.display(), out.lines().count());
}

/// Fold every metrics snapshot under `dir` into a `## Run metrics`
/// section: one subsection per snapshot, counters as a single line,
/// histograms as count/mean/max digests. Unparseable files are noted
/// rather than fatal — a truncated snapshot should not sink the digest.
fn append_metrics_section(out: &mut String, dir: &Path) {
    let Ok(entries) = fs::read_dir(dir) else {
        return; // no metrics emitted (e.g. an old log) — section omitted
    };
    let mut files: Vec<_> = entries
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "json"))
        .collect();
    if files.is_empty() {
        return;
    }
    files.sort();

    let _ = writeln!(out, "\n## Run metrics\n");
    let _ = writeln!(
        out,
        "Folded from `{}/*.json` (event counters and timing histograms;\nvalues vary run to run and never enter the CSVs).\n",
        dir.display()
    );
    for path in files {
        let stem = path.file_stem().map_or_else(
            || path.display().to_string(),
            |s| s.to_string_lossy().into_owned(),
        );
        let snapshot = fs::read_to_string(&path).ok().and_then(|t| parse(&t).ok());
        let Some(v) = snapshot else {
            let _ = writeln!(
                out,
                "### {stem}\n\n_unreadable snapshot: {}_\n",
                path.display()
            );
            continue;
        };
        let _ = writeln!(out, "### {stem}\n");
        if let Some(Value::Obj(counters)) = v.get("counters") {
            let rendered: Vec<String> = counters
                .iter()
                .map(|(k, c)| format!("{k} = {}", c.as_u64().unwrap_or(0)))
                .collect();
            if !rendered.is_empty() {
                let _ = writeln!(out, "- counters: {}", rendered.join(", "));
            }
        }
        if let Some(Value::Obj(hists)) = v.get("histograms") {
            for (k, h) in hists {
                let count = h.get("count").and_then(Value::as_u64).unwrap_or(0);
                let mean = h.get("mean_secs").and_then(Value::as_f64);
                let max = h.get("max_secs").and_then(Value::as_f64);
                let _ = writeln!(
                    out,
                    "- {k}: {count} samples, mean {}, max {}",
                    fmt_secs(mean),
                    fmt_secs(max)
                );
            }
        }
        let _ = writeln!(out);
    }
}

/// Human-scale seconds: `-` when absent, engineering-friendly otherwise.
fn fmt_secs(v: Option<f64>) -> String {
    match v {
        None => "-".to_string(),
        Some(s) if s >= 1.0 => format!("{s:.2} s"),
        Some(s) if s >= 1e-3 => format!("{:.2} ms", s * 1e3),
        Some(s) => format!("{:.1} µs", s * 1e6),
    }
}
