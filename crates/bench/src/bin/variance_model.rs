//! §7's accuracy model: StdDev(D̂) ≈ 1/√(pNL).
//!
//! Not a table in the paper, but the model §7 gives users for choosing p
//! and N. We verify it empirically: replicate BADABING runs with
//! different probe seeds over the same CBR traffic, measure the standard
//! deviation of the duration estimate (in slots) across replications, and
//! compare with the model's prediction. The paper also notes the
//! accuracy should "depend on the product pNL, but not on the individual
//! values" — the sweep exercises different (p, N) at similar products.
//!
//! Every (p, replication) pair is an independent runner job; `--reps`
//! overrides the replication count (default 10, 5 with `--quick`).

use badabing_bench::runner;
use badabing_bench::scenarios::{self, Scenario, PROBE_FLOW};
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_core::config::BadabingConfig;
use badabing_core::validate::duration_stddev_model;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_stats::summary::Summary;

const P_POINTS: [f64; 3] = [0.1, 0.3, 0.9];

fn main() {
    let opts = RunOpts::from_args();
    let reps: u64 = if opts.reps > 1 {
        u64::from(opts.reps)
    } else if opts.quick {
        5
    } else {
        10
    };
    let secs = opts.duration(300.0, 120.0);

    let jobs: Vec<(f64, u64)> = P_POINTS
        .iter()
        .flat_map(|&p| (0..reps).map(move |rep| (p, rep)))
        .collect();
    let res = runner::run_jobs(opts.effective_threads(), &jobs, |&(p, rep)| {
        let cfg = BadabingConfig::paper_default(p);
        let n_slots = (secs / cfg.slot_secs).round() as u64;
        let mut db = Dumbbell::standard();
        // Same traffic every replication; only the probe seed varies.
        scenarios::attach(&mut db, Scenario::CbrUniform, opts.seed);
        let h = BadabingHarness::attach(
            &mut db,
            cfg,
            n_slots,
            PROBE_FLOW,
            seeded(opts.seed.wrapping_add(1000 + rep), "probe"),
        );
        db.run_for(h.horizon_secs() + 1.0);
        let analysis = h.analyze(&db.sim);
        let gt = db.ground_truth(h.horizon_secs());
        // L: loss events (episodes) per slot.
        let loss_rate = gt.episodes.len() as f64 / n_slots as f64;
        let duration = analysis.estimates.duration_slots_basic();
        ((n_slots, duration, loss_rate), db.sim.dispatched())
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("variance_model"));
    w.heading(&format!(
        "StdDev(D-hat) vs 1/sqrt(pNL) model ({secs:.0}s CBR, {reps} replications per point)"
    ));
    w.row(&format!(
        "{:>4} {:>9} {:>12} {:>12} {:>12} {:>8}",
        "p", "N", "measured sd", "model sd", "mean D (sl)", "ratio"
    ));
    w.csv("p,n_slots,measured_sd_slots,model_sd_slots,mean_duration_slots,loss_event_rate");

    for (i, &p) in P_POINTS.iter().enumerate() {
        let chunk = &points[i * reps as usize..(i + 1) * reps as usize];
        let n_slots = chunk[0].0;
        let mut durations = Summary::new();
        let mut loss_rate_acc = Summary::new();
        for &(_, duration, loss_rate) in chunk {
            if let Some(d) = duration {
                durations.push(d);
            }
            loss_rate_acc.push(loss_rate);
        }
        let measured_sd = durations.std_dev();
        let l = loss_rate_acc.mean().max(1e-9);
        let model_sd = duration_stddev_model(p, n_slots as f64, l);
        let ratio = if model_sd > 0.0 {
            measured_sd / model_sd
        } else {
            f64::NAN
        };
        w.row(&format!(
            "{:>4.1} {:>9} {:>12.3} {:>12.3} {:>12.2} {:>8.2}",
            p,
            n_slots,
            measured_sd,
            model_sd,
            durations.mean(),
            ratio
        ));
        w.csv(&format!(
            "{p},{n_slots},{measured_sd},{model_sd},{},{l}",
            durations.mean()
        ));
    }
    w.row("(ratio near 1 means the 1/sqrt(pNL) model predicts the replication spread)");
    println!("{stat_line}");
    w.finish();
}
