//! The perf-regression gate: a fixed seeded scenario trio with a JSON
//! trajectory point.
//!
//! Runs the TCP, CBR, and web scenarios for a fixed virtual duration on
//! fixed seeds, measures throughput (simulator events per wall second),
//! per-replicate wall time, and peak monitor memory, and writes the
//! digest to `BENCH_sim.json`. CI runs this under a hard timeout and
//! uploads the JSON, so every PR extends a comparable perf trajectory.
//!
//! The gate also measures the memory-scaling claim behind the streaming
//! monitor: one scenario is run at two durations in both monitor modes,
//! and the JSON records how peak monitor bytes grow — O(slots + drops)
//! for streaming vs O(events) for full-trace retention.
//!
//! ```text
//! perf_smoke [--quick] [--seconds S] [--seed N] [--reps N] [--threads N]
//!            [--engine heap|calendar] [--trace] [--out PATH]
//! ```

use badabing_bench::runner::{aggregate_all, run_jobs};
use badabing_bench::scenarios::{self, Scenario};
use badabing_sim::{set_default_queue_kind, QueueKind};
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

const TRIO: [Scenario; 3] = [Scenario::InfiniteTcp, Scenario::CbrUniform, Scenario::Web];
const PAPER_SECS: f64 = 60.0;
const QUICK_SECS: f64 = 15.0;

struct RepResult {
    wall_secs: f64,
    events: u64,
    peak_monitor_bytes: usize,
    stream_slots: usize,
    drop_points: usize,
}

/// One seeded scenario replicate: build, run, measure.
fn run_one(scenario: Scenario, seed: u64, secs: f64, trace: bool) -> RepResult {
    let mut db = scenarios::build_with(scenario, seed, trace);
    let t0 = Instant::now();
    db.run_for(secs + 1.0);
    let wall_secs = t0.elapsed().as_secs_f64();
    let handle = db.monitor();
    let m = handle.borrow();
    RepResult {
        wall_secs,
        events: db.sim.dispatched(),
        peak_monitor_bytes: m.peak_bytes(),
        stream_slots: m.stream_slots(),
        drop_points: m.drop_points(),
    }
}

fn main() {
    // perf_smoke shares RunOpts' flag set but adds --engine/--trace, so it
    // parses by hand (mirroring dump_trace).
    let mut seconds: Option<f64> = None;
    let mut quick = false;
    let mut seed = 20050821u64;
    let mut reps = 3u32;
    let mut threads: Option<usize> = None;
    let mut engine = QueueKind::Calendar;
    let mut trace = false;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--trace" => trace = true,
            "--seconds" => seconds = args.next().and_then(|v| v.parse().ok()),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--reps" => reps = args.next().and_then(|v| v.parse().ok()).unwrap_or(reps),
            "--threads" => threads = args.next().and_then(|v| v.parse().ok()),
            "--engine" => {
                engine = match args.next().as_deref() {
                    Some("heap") => QueueKind::Heap,
                    Some("calendar") => QueueKind::Calendar,
                    other => {
                        eprintln!("unknown engine {other:?} (use heap|calendar)");
                        std::process::exit(2);
                    }
                }
            }
            "--out" => out = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }
    let secs = seconds.unwrap_or(if quick { QUICK_SECS } else { PAPER_SECS });
    let threads = threads.unwrap_or_else(|| {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    });
    set_default_queue_kind(Some(engine));
    let engine_label = match engine {
        QueueKind::Heap => "heap",
        QueueKind::Calendar => "calendar",
    };

    println!(
        "=== perf_smoke: {engine_label} engine, {} monitor, {secs}s x {reps} reps ===",
        if trace { "trace" } else { "streaming" }
    );

    // Phase 1: throughput trio. Jobs are (scenario, rep) pairs fanned out
    // over the pool; the JSON aggregates per scenario.
    let jobs: Vec<(Scenario, u32)> = TRIO
        .iter()
        .flat_map(|&s| (0..reps.max(1)).map(move |r| (s, r)))
        .collect();
    let pool_t0 = Instant::now();
    let results = run_jobs(threads, &jobs, |&(scenario, rep)| {
        let r = run_one(
            scenario,
            badabing_bench::runner::rep_seed(seed, rep),
            secs,
            trace,
        );
        let events = r.events;
        (r, events)
    });
    let pool_wall = pool_t0.elapsed().as_secs_f64();

    let mut scenario_json = Vec::new();
    let mut total_events = 0u64;
    let mut total_busy = 0.0f64;
    for &scenario in &TRIO {
        let reps_of: Vec<&RepResult> = results
            .outputs
            .iter()
            .zip(&jobs)
            .filter(|(_, (s, _))| *s == scenario)
            .map(|(o, _)| &o.value)
            .collect();
        let wall = aggregate_all(reps_of.iter().map(|r| r.wall_secs));
        let events = reps_of[0].events; // seeded: identical across rep 0..n? no — seeds differ
        let events_mean = aggregate_all(reps_of.iter().map(|r| r.events as f64)).mean;
        let peak = reps_of
            .iter()
            .map(|r| r.peak_monitor_bytes)
            .max()
            .unwrap_or(0);
        let slots = reps_of[0].stream_slots;
        let drops_max = reps_of.iter().map(|r| r.drop_points).max().unwrap_or(0);
        let rate = if wall.mean > 0.0 {
            events_mean / wall.mean
        } else {
            0.0
        };
        total_events += reps_of.iter().map(|r| r.events).sum::<u64>();
        total_busy += reps_of.iter().map(|r| r.wall_secs).sum::<f64>();
        println!(
            "{:>13}: {:>9.0} events/s, wall {:.3}±{:.3}s per rep, peak monitor {} KiB, {} slots, {} drop points",
            scenario.label(),
            rate,
            wall.mean,
            wall.sd,
            peak / 1024,
            slots,
            drops_max,
        );
        scenario_json.push(format!(
            concat!(
                "    {{\"scenario\": \"{}\", \"events_first_rep\": {}, \"events_mean\": {:.0}, ",
                "\"wall_secs_mean\": {:.6}, \"wall_secs_sd\": {:.6}, \"events_per_sec\": {:.0}, ",
                "\"peak_monitor_bytes\": {}, \"stream_slots\": {}, \"drop_points_max\": {}}}"
            ),
            scenario.label(),
            events,
            events_mean,
            wall.mean,
            wall.sd,
            rate,
            peak,
            slots,
            drops_max,
        ));
    }

    // Phase 2: memory scaling. One scenario, two durations, both monitor
    // modes — the measured form of "streaming memory is O(slots + drops),
    // trace memory is O(events)".
    let scaling_scenario = Scenario::CbrUniform;
    let (short_secs, long_secs) = (secs, secs * 2.0);
    let scaling_jobs: Vec<(f64, bool)> = vec![
        (short_secs, false),
        (long_secs, false),
        (short_secs, true),
        (long_secs, true),
    ];
    let scaling = run_jobs(threads, &scaling_jobs, |&(dur, trace_mode)| {
        let r = run_one(scaling_scenario, seed, dur, trace_mode);
        let events = r.events;
        (r, events)
    })
    .into_values();
    let mut scaling_json = Vec::new();
    for ((dur, trace_mode), r) in scaling_jobs.iter().zip(&scaling) {
        println!(
            "scaling {:>9} {:>5.0}s: peak monitor {:>9} KiB ({} events)",
            if *trace_mode { "trace" } else { "streaming" },
            dur,
            r.peak_monitor_bytes / 1024,
            r.events,
        );
        scaling_json.push(format!(
            concat!(
                "    {{\"mode\": \"{}\", \"seconds\": {}, \"peak_monitor_bytes\": {}, ",
                "\"events\": {}, \"stream_slots\": {}, \"drop_points\": {}}}"
            ),
            if *trace_mode { "trace" } else { "streaming" },
            dur,
            r.peak_monitor_bytes,
            r.events,
            r.stream_slots,
            r.drop_points,
        ));
    }

    let total_rate = if total_busy > 0.0 {
        total_events as f64 / total_busy
    } else {
        0.0
    };
    println!(
        "[perf_smoke: {total_events} events, {total_busy:.2}s busy on {} threads, {:.0} events/s, {pool_wall:.2}s wall]",
        results.threads, total_rate,
    );

    let path = out.unwrap_or_else(|| PathBuf::from("BENCH_sim.json"));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"name\": \"perf_smoke\",\n",
            "  \"seed\": {},\n",
            "  \"engine\": \"{}\",\n",
            "  \"trace_mode\": {},\n",
            "  \"seconds\": {},\n",
            "  \"reps\": {},\n",
            "  \"threads\": {},\n",
            "  \"scenarios\": [\n{}\n  ],\n",
            "  \"memory_scaling\": [\n{}\n  ],\n",
            "  \"totals\": {{\"events\": {}, \"busy_secs\": {:.3}, ",
            "\"events_per_sec\": {:.0}, \"pool_wall_secs\": {:.3}}}\n",
            "}}\n"
        ),
        seed,
        engine_label,
        trace,
        secs,
        reps,
        results.threads,
        scenario_json.join(",\n"),
        scaling_json.join(",\n"),
        total_events,
        total_busy,
        total_rate,
        pool_wall,
    );
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            f.write_all(json.as_bytes()).unwrap();
            println!("[bench json written to {}]", path.display());
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
