//! Figure 9: sensitivity of estimated loss frequency to the α and τ
//! thresholds, over probe rates p ∈ {0.1 ... 0.9} under CBR traffic.
//!
//! (a) τ fixed at 80 ms, α ∈ {0.05, 0.10, 0.20};
//! (b) α fixed at 0.10, τ ∈ {20, 40, 80} ms.
//!
//! The paper's result: larger (more permissive) thresholds raise the
//! estimated frequency; higher probe rates can use tighter thresholds —
//! the trade-off behind the §6.2 parameter rules.
//!
//! One simulation per probe rate (a runner job) is reused for every
//! threshold combination: the thresholds only affect post-run marking,
//! not the probe process itself.

use badabing_bench::runner;
use badabing_bench::runs::{run_badabing, slots_for, P_SWEEP};
use badabing_bench::scenarios::Scenario;
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_core::config::BadabingConfig;
use badabing_core::detector::CongestionDetector;
use badabing_core::estimator::Estimates;

const ALPHAS: [f64; 3] = [0.05, 0.10, 0.20];
const TAUS_MS: [f64; 3] = [20.0, 40.0, 80.0];

struct ThresholdPoint {
    f_true: f64,
    series_a: [f64; 3],
    series_b: [f64; 3],
}

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(900.0, 120.0);

    let res = runner::run_jobs(opts.effective_threads(), &P_SWEEP, |&p| {
        let cfg = BadabingConfig::paper_default(p);
        let n_slots = slots_for(secs, cfg.slot_secs);
        let run = run_badabing(Scenario::CbrUniform, cfg, n_slots, opts.seed);
        let obs = run.harness.observations(&run.db.sim);

        let freq_for = |alpha: f64, tau_secs: f64| -> f64 {
            let det = CongestionDetector::with_params(alpha, tau_secs, cfg.owd_window);
            let (log, _) = det.assemble(&obs, n_slots, cfg.slot_secs);
            Estimates::from_log(&log).frequency().unwrap_or(0.0)
        };

        let point = ThresholdPoint {
            f_true: run.truth.frequency(),
            series_a: ALPHAS.map(|a| freq_for(a, 0.080)),
            series_b: TAUS_MS.map(|t| freq_for(0.10, t / 1000.0)),
        };
        (point, run.db.sim.dispatched())
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("fig9_thresholds"));
    w.heading(&format!(
        "Figure 9: loss-frequency sensitivity to alpha and tau ({secs:.0}s CBR per p)"
    ));
    w.csv("p,alpha,tau_ms,est_frequency,true_frequency");

    w.row(&format!(
        "{:>4} {:>10} | {:>26} | {:>26}",
        "p", "true freq", "(a) tau=80ms, alpha=.05/.1/.2", "(b) alpha=.1, tau=20/40/80ms"
    ));
    for (p, point) in P_SWEEP.iter().zip(&points) {
        for (i, &a) in ALPHAS.iter().enumerate() {
            w.csv(&format!(
                "{p},{a},80,{},{}",
                point.series_a[i], point.f_true
            ));
        }
        for (i, &t) in TAUS_MS.iter().enumerate() {
            w.csv(&format!(
                "{p},0.1,{t},{},{}",
                point.series_b[i], point.f_true
            ));
        }
        w.row(&format!(
            "{:>4.1} {:>10.4} | {:>8.4} {:>8.4} {:>8.4} | {:>8.4} {:>8.4} {:>8.4}",
            p,
            point.f_true,
            point.series_a[0],
            point.series_a[1],
            point.series_a[2],
            point.series_b[0],
            point.series_b[1],
            point.series_b[2],
        ));
    }
    println!("{stat_line}");
    w.finish();
}
