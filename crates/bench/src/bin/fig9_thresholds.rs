//! Figure 9: sensitivity of estimated loss frequency to the α and τ
//! thresholds, over probe rates p ∈ {0.1 ... 0.9} under CBR traffic.
//!
//! (a) τ fixed at 80 ms, α ∈ {0.05, 0.10, 0.20};
//! (b) α fixed at 0.10, τ ∈ {20, 40, 80} ms.
//!
//! The paper's result: larger (more permissive) thresholds raise the
//! estimated frequency; higher probe rates can use tighter thresholds —
//! the trade-off behind the §6.2 parameter rules.
//!
//! One simulation per probe rate is reused for every threshold
//! combination: the thresholds only affect post-run marking, not the
//! probe process itself.

use badabing_bench::runs::{run_badabing, slots_for, P_SWEEP};
use badabing_bench::scenarios::Scenario;
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_core::config::BadabingConfig;
use badabing_core::detector::CongestionDetector;
use badabing_core::estimator::Estimates;

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(900.0, 120.0);
    let mut w = TableWriter::new(&opts.out_path("fig9_thresholds"));
    w.heading(&format!(
        "Figure 9: loss-frequency sensitivity to alpha and tau ({secs:.0}s CBR per p)"
    ));
    w.csv("p,alpha,tau_ms,est_frequency,true_frequency");

    let alphas = [0.05, 0.10, 0.20];
    let taus_ms = [20.0, 40.0, 80.0];

    w.row(&format!(
        "{:>4} {:>10} | {:>26} | {:>26}",
        "p", "true freq", "(a) tau=80ms, alpha=.05/.1/.2", "(b) alpha=.1, tau=20/40/80ms"
    ));
    for p in P_SWEEP {
        let cfg = BadabingConfig::paper_default(p);
        let n_slots = slots_for(secs, cfg.slot_secs);
        let run = run_badabing(Scenario::CbrUniform, cfg, n_slots, opts.seed);
        let obs = run.harness.observations(&run.db.sim);
        let f_true = run.truth.frequency();

        let freq_for = |alpha: f64, tau_secs: f64| -> f64 {
            let det = CongestionDetector::with_params(alpha, tau_secs, cfg.owd_window);
            let (log, _) = det.assemble(&obs, n_slots, cfg.slot_secs);
            Estimates::from_log(&log).frequency().unwrap_or(0.0)
        };

        let series_a: Vec<f64> = alphas.iter().map(|&a| freq_for(a, 0.080)).collect();
        let series_b: Vec<f64> = taus_ms.iter().map(|&t| freq_for(0.10, t / 1000.0)).collect();

        for (i, &a) in alphas.iter().enumerate() {
            w.csv(&format!("{p},{a},80,{},{f_true}", series_a[i]));
        }
        for (i, &t) in taus_ms.iter().enumerate() {
            w.csv(&format!("{p},0.1,{t},{},{f_true}", series_b[i]));
        }
        w.row(&format!(
            "{:>4.1} {:>10.4} | {:>8.4} {:>8.4} {:>8.4} | {:>8.4} {:>8.4} {:>8.4}",
            p,
            f_true,
            series_a[0],
            series_a[1],
            series_a[2],
            series_b[0],
            series_b[1],
            series_b[2],
        ));
    }
    w.finish();
}
