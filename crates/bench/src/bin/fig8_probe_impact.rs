//! Figure 8: the impact of probe trains on queue dynamics during loss
//! episodes under infinite-TCP traffic.
//!
//! The paper shows queue-length detail with no probes, 3-packet probes,
//! and 10-packet probes at 10 ms intervals: 3-packet probes leave the
//! dynamics essentially unchanged, while 10-packet trains visibly perturb
//! the queue (extra loss, deeper excursions) — the reason BADABING
//! settles on 3.

use badabing_bench::figures::{dump_queue_series, episode_summary};
use badabing_bench::scenarios::{self, Scenario, PROBE_FLOW};
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_probe::fixed::attach_fixed;
use badabing_sim::topology::Dumbbell;

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(60.0, 25.0);
    let mut w = TableWriter::new(&opts.out_path("fig8_probe_impact"));
    w.heading(&format!(
        "Figure 8: probe-train impact on queue dynamics ({secs:.0}s, infinite TCP)"
    ));
    w.csv("probe_packets,episodes,frequency,mean_duration_secs,router_loss_rate,probe_drops,cross_drops");

    for n_packets in [0u8, 3, 10] {
        let mut db = Dumbbell::standard();
        scenarios::attach(&mut db, Scenario::InfiniteTcp, opts.seed);
        if n_packets > 0 {
            attach_fixed(&mut db, n_packets, PROBE_FLOW);
        }
        db.run_for(secs + 1.0);
        let gt = db.ground_truth(secs);
        let m = db.monitor();
        let probe_drops = m.borrow().probe_drops();
        let cross_drops = m.borrow().drops() - probe_drops;
        let label = match n_packets {
            0 => "no probe traffic".to_string(),
            n => format!("probe train of {n} packets"),
        };
        w.row(&format!("--- {label} ---"));
        let t0 = gt
            .episodes
            .first()
            .map_or(secs / 3.0, |e| (e.start.as_secs_f64() - 1.0).max(0.0));
        let t1 = (t0 + 3.0).min(secs);
        dump_queue_series(&gt, t0, t1, &mut w);
        episode_summary(&gt, &w);
        w.row(&format!("probe drops: {probe_drops}  cross-traffic drops: {cross_drops}"));
        w.csv(&format!(
            "{n_packets},{},{},{},{},{probe_drops},{cross_drops}",
            gt.episodes.len(),
            gt.frequency(),
            gt.mean_duration_secs(),
            gt.router_loss_rate,
        ));
    }
    w.finish();
}
