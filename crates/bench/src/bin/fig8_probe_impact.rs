//! Figure 8: the impact of probe trains on queue dynamics during loss
//! episodes under infinite-TCP traffic.
//!
//! The paper shows queue-length detail with no probes, 3-packet probes,
//! and 10-packet probes at 10 ms intervals: 3-packet probes leave the
//! dynamics essentially unchanged, while 10-packet trains visibly perturb
//! the queue (extra loss, deeper excursions) — the reason BADABING
//! settles on 3.
//!
//! The three probe sizes run as parallel runner jobs.

use badabing_bench::figures::{dump_queue_series, episode_summary};
use badabing_bench::runner;
use badabing_bench::scenarios::{self, Scenario, PROBE_FLOW};
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_probe::fixed::attach_fixed;
use badabing_sim::monitor::GroundTruth;
use badabing_sim::topology::Dumbbell;

struct ImpactPoint {
    truth: GroundTruth,
    probe_drops: u64,
    cross_drops: u64,
}

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(60.0, 25.0);
    let sizes = [0u8, 3, 10];

    let res = runner::run_jobs(opts.effective_threads(), &sizes, |&n_packets| {
        let mut db = Dumbbell::standard();
        scenarios::attach(&mut db, Scenario::InfiniteTcp, opts.seed);
        if n_packets > 0 {
            attach_fixed(&mut db, n_packets, PROBE_FLOW);
        }
        db.run_for(secs + 1.0);
        let truth = db.ground_truth(secs);
        let m = db.monitor();
        let probe_drops = m.borrow().probe_drops();
        let cross_drops = m.borrow().drops() - probe_drops;
        (
            ImpactPoint {
                truth,
                probe_drops,
                cross_drops,
            },
            db.sim.dispatched(),
        )
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("fig8_probe_impact"));
    w.heading(&format!(
        "Figure 8: probe-train impact on queue dynamics ({secs:.0}s, infinite TCP)"
    ));
    w.csv("probe_packets,episodes,frequency,mean_duration_secs,router_loss_rate,probe_drops,cross_drops");

    for (n_packets, point) in sizes.iter().zip(&points) {
        let gt = &point.truth;
        let label = match n_packets {
            0 => "no probe traffic".to_string(),
            n => format!("probe train of {n} packets"),
        };
        w.row(&format!("--- {label} ---"));
        let t0 = gt
            .episodes
            .first()
            .map_or(secs / 3.0, |e| (e.start.as_secs_f64() - 1.0).max(0.0));
        let t1 = (t0 + 3.0).min(secs);
        dump_queue_series(gt, t0, t1, &mut w);
        episode_summary(gt, &w);
        w.row(&format!(
            "probe drops: {}  cross-traffic drops: {}",
            point.probe_drops, point.cross_drops
        ));
        w.csv(&format!(
            "{n_packets},{},{},{},{},{},{}",
            gt.episodes.len(),
            gt.frequency(),
            gt.mean_duration_secs(),
            gt.router_loss_rate,
            point.probe_drops,
            point.cross_drops,
        ));
    }
    println!("{stat_line}");
    w.finish();
}
