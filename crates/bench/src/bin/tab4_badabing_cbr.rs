//! Table 4: BADABING loss estimates, CBR traffic with uniform 68 ms
//! episodes, p ∈ {0.1, 0.3, 0.5, 0.7, 0.9}, N = 180 000 slots of 5 ms.
//!
//! The paper's result: frequency close to truth for p ≥ 0.3 (p = 0.1 is
//! too sparse for a 15-minute run), duration within 25% of 68 ms at every
//! rate.

use badabing_bench::runs::print_badabing_table;
use badabing_bench::scenarios::Scenario;
use badabing_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    print_badabing_table(
        Scenario::CbrUniform,
        &opts,
        "tab4_badabing_cbr",
        "Table 4: BADABING with constant 68 ms loss episodes",
    );
}
