//! Ablation: self-similar-style ON/OFF cross traffic.
//!
//! The paper evaluates against scripted CBR episodes, reactive TCP, and
//! web sessions. An aggregate of heavy-tailed ON/OFF sources (the
//! Leland-style construction behind the paper's citation \[19\]) produces
//! burstiness at many time scales without any scripting — loss episodes
//! of highly variable length at irregular spacing. This run measures
//! BADABING against that process across probe rates, one runner job per
//! probe rate.

use badabing_bench::runner;
use badabing_bench::scenarios::PROBE_FLOW;
use badabing_bench::table::TableWriter;
use badabing_bench::{table, RunOpts};
use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_traffic::onoff::attach_onoff_aggregate;

struct OnOffPoint {
    f_true: f64,
    d_true: f64,
    f_est: Option<f64>,
    d_est: Option<f64>,
    valid: bool,
}

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(900.0, 120.0);
    let p_points = [0.3, 0.5, 0.9];

    let res = runner::run_jobs(opts.effective_threads(), &p_points, |&p| {
        let mut db = Dumbbell::standard();
        attach_onoff_aggregate(&mut db, 32, 0.85, 8.0, 0.5, 100, opts.seed);
        let cfg = BadabingConfig::paper_default(p);
        let n_slots = (secs / cfg.slot_secs).round() as u64;
        let h = BadabingHarness::attach(
            &mut db,
            cfg,
            n_slots,
            PROBE_FLOW,
            seeded(opts.seed, "probe"),
        );
        db.run_for(h.horizon_secs() + 1.0);
        let truth = db.ground_truth(h.horizon_secs());
        let a = h.analyze(&db.sim);
        let point = OnOffPoint {
            f_true: truth.frequency(),
            d_true: truth.mean_duration_secs(),
            f_est: a.frequency(),
            d_est: a.duration_secs(),
            valid: a.validation.passes(0.5),
        };
        (point, db.sim.dispatched())
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("ablation_onoff"));
    w.heading(&format!(
        "Ablation: ON/OFF (heavy-tailed) cross traffic ({secs:.0}s, 32 sources at 85% load)"
    ));
    w.row(&format!(
        "{:>4} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "p", "true freq", "est freq", "true dur", "est dur", "validation"
    ));
    w.csv("p,true_frequency,est_frequency,true_duration_secs,est_duration_secs,validation_passes");

    for (p, point) in p_points.iter().zip(&points) {
        w.row(&format!(
            "{:>4.1} {:>11.4} {} {:>11.3} {} {:>11}",
            p,
            point.f_true,
            table::cell(point.f_est, 11, 4),
            point.d_true,
            table::cell(point.d_est, 11, 3),
            if point.valid { "ok" } else { "FLAGGED" },
        ));
        w.csv(&format!(
            "{p},{},{},{},{},{}",
            point.f_true,
            table::csv_cell(point.f_est),
            point.d_true,
            table::csv_cell(point.d_est),
            point.valid,
        ));
    }
    println!("{stat_line}");
    w.finish();
}
