//! Ablation: self-similar-style ON/OFF cross traffic.
//!
//! The paper evaluates against scripted CBR episodes, reactive TCP, and
//! web sessions. An aggregate of heavy-tailed ON/OFF sources (the
//! Leland-style construction behind the paper's citation \[19\]) produces
//! burstiness at many time scales without any scripting — loss episodes
//! of highly variable length at irregular spacing. This run measures
//! BADABING against that process across probe rates.

use badabing_bench::scenarios::PROBE_FLOW;
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_traffic::onoff::attach_onoff_aggregate;

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(900.0, 120.0);
    let mut w = TableWriter::new(&opts.out_path("ablation_onoff"));
    w.heading(&format!(
        "Ablation: ON/OFF (heavy-tailed) cross traffic ({secs:.0}s, 32 sources at 85% load)"
    ));
    w.row(&format!(
        "{:>4} {:>11} {:>11} {:>11} {:>11} {:>11}",
        "p", "true freq", "est freq", "true dur", "est dur", "validation"
    ));
    w.csv("p,true_frequency,est_frequency,true_duration_secs,est_duration_secs,validation_passes");

    for p in [0.3, 0.5, 0.9] {
        let mut db = Dumbbell::standard();
        attach_onoff_aggregate(&mut db, 32, 0.85, 8.0, 0.5, 100, opts.seed);
        let cfg = BadabingConfig::paper_default(p);
        let n_slots = (secs / cfg.slot_secs).round() as u64;
        let h = BadabingHarness::attach(&mut db, cfg, n_slots, PROBE_FLOW, seeded(opts.seed, "probe"));
        db.run_for(h.horizon_secs() + 1.0);
        let truth = db.ground_truth(h.horizon_secs());
        let a = h.analyze(&db.sim);
        let valid = a.validation.passes(0.5);
        w.row(&format!(
            "{:>4.1} {:>11.4} {} {:>11.3} {} {:>11}",
            p,
            truth.frequency(),
            badabing_bench::table::cell(a.frequency(), 11, 4),
            truth.mean_duration_secs(),
            badabing_bench::table::cell(a.duration_secs(), 11, 3),
            if valid { "ok" } else { "FLAGGED" },
        ));
        w.csv(&format!(
            "{p},{},{},{},{},{valid}",
            truth.frequency(),
            a.frequency().map_or(String::new(), |v| v.to_string()),
            truth.mean_duration_secs(),
            a.duration_secs().map_or(String::new(), |v| v.to_string()),
        ));
    }
    w.finish();
}
