//! Figure 6: queue-length time series with Harpoon-like web traffic.
//!
//! Bursty, irregular occupancy; loss episodes appear when session surges
//! overrun the buffer, with durations governed by the congestion-control
//! reaction rather than a script.
//!
//! A single simulation, run as one runner job for uniform timing and
//! event-rate instrumentation across the experiment suite.

use badabing_bench::figures::{dump_queue_series, episode_summary};
use badabing_bench::runner;
use badabing_bench::scenarios::{build, Scenario};
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(120.0, 45.0);

    let res = runner::run_jobs(opts.effective_threads(), &[()], |&()| {
        let mut db = build(Scenario::Web, opts.seed);
        db.run_for(secs);
        let gt = db.ground_truth(secs);
        (gt, db.sim.dispatched())
    });
    let stat_line = res.stat_line();
    let gt = &res.into_values()[0];

    let mut w = TableWriter::new(&opts.out_path("fig6_queue_web"));
    w.heading("Figure 6: queue length, Harpoon-like web traffic");
    // Center the window on the first loss episode so the figure shows one,
    // like the paper's grey-shaded segments.
    let (t0, t1) = match gt.episodes.first() {
        Some(ep) => {
            let mid = ep.start.as_secs_f64();
            ((mid - 5.0).max(0.0), (mid + 5.0).min(secs))
        }
        None => (0.0, 10.0_f64.min(secs)),
    };
    dump_queue_series(gt, t0, t1, &mut w);
    episode_summary(gt, &w);
    println!("{stat_line}");
    w.finish();
}
