//! Figure 4: queue-length time series with 40 infinite TCP sources.
//!
//! The paper's figure shows the classic synchronized sawtooth: the queue
//! climbs to the 100 ms buffer limit, a loss episode synchronizes the
//! sources' multiplicative decreases, the queue drains, and the cycle
//! repeats every few seconds.
//!
//! A single simulation, run as one runner job for uniform timing and
//! event-rate instrumentation across the experiment suite.

use badabing_bench::figures::{dump_queue_series, episode_summary};
use badabing_bench::runner;
use badabing_bench::scenarios::{build, Scenario};
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(60.0, 25.0);

    let res = runner::run_jobs(opts.effective_threads(), &[()], |&()| {
        let mut db = build(Scenario::InfiniteTcp, opts.seed);
        db.run_for(secs);
        let gt = db.ground_truth(secs);
        (gt, db.sim.dispatched())
    });
    let stat_line = res.stat_line();
    let gt = &res.into_values()[0];

    let mut w = TableWriter::new(&opts.out_path("fig4_queue_tcp"));
    w.heading("Figure 4: queue length, 40 infinite TCP sources");
    let t0 = (secs / 3.0).floor();
    let t1 = (t0 + 10.0).min(secs);
    dump_queue_series(gt, t0, t1, &mut w);
    episode_summary(gt, &w);
    println!("{stat_line}");
    w.finish();
}
