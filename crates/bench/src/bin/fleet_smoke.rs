//! The fleet-scale receiver soak: thousands of concurrent sessions on
//! one server over the seeded virtual network, with a JSON trajectory
//! point (`BENCH_fleet.json`).
//!
//! One driver thread opens **every** session before fetching any, so
//! the server really holds the whole fleet concurrently — the regime
//! the event-driven readiness loop and the sharded registry exist for.
//! Per session the driver measures three control-plane latencies on the
//! *virtual* clock:
//!
//! 1. **setup** — SYN to SYN-ACK, the admission path (capacity CAS,
//!    budget charge, shard insert);
//! 2. **drain** — a heartbeat round trip issued right behind the
//!    session's probe burst, so the ack only comes back once the
//!    receiver has chewed through the burst ahead of it;
//! 3. **fetch** — FIN through the last report chunk, the chunked
//!    retrieval path.
//!
//! Each session's burst forms proper BADABING experiments — two
//! contiguous slots (2j, 2j+1) of `TRAIN` packets — so the receiver's
//! online estimator assembles real outcomes. Between the burst phase
//! and the fetch phase one **fleet-scope `EstimateRequest`** merges all
//! live sessions' online counters in a single exchange; the reply rides
//! in the stable JSON, which makes the merged-estimate path part of the
//! `--quick` byte-identical determinism gate.
//!
//! Every link carries mild faults (0.5 % loss, 200 µs jitter on a
//! 100 µs base), so the tails include genuine retransmits — the p999
//! is a retry story, not a rounding artifact. All latencies are virtual
//! nanoseconds: the numbers measure protocol behavior (RTTs, backoff
//! schedules, queueing behind bursts), not host speed, which is what
//! makes them gateable in CI and byte-identical across reruns.
//!
//! `--quick` additionally runs the whole scenario **twice** from the
//! same seed and asserts the two JSON payloads are byte-identical —
//! the determinism contract of the virtual network, checked end to end
//! through the real server.
//!
//! The gates: every session must complete (no reaps, no evictions, no
//! strands), the latency quantiles must stay under generous structural
//! bounds, and the registry's memory high-water mark must stay within
//! the configured global budget.
//!
//! ```text
//! fleet_smoke [--quick] [--sessions N] [--out PATH]
//! ```

use badabing_live::control::{ControlClient, ControlConfig, EstimateReport};
use badabing_live::faultnet::{FaultNet, LinkFaults};
use badabing_live::provider::Provider;
use badabing_live::receiver::{start_server, PressurePolicy, ServerConfig, SessionEnd};
use badabing_metrics::Registry;
use badabing_wire::control::{EstimateScope, SessionParams};
use badabing_wire::ProbeHeader;
use std::io::Write as _;
use std::net::SocketAddr;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SEED: u64 = 4242;
const RECV: &str = "10.0.0.1:9000";
const PROBE_SRC: &str = "10.0.0.3:7000";
/// Control sockets live at `10.0.0.2:FLEET_PORT0 + i`.
const FLEET_PORT0: u16 = 10_000;

const LOSS: f64 = 0.005;
const JITTER: Duration = Duration::from_micros(200);
const PACKET_BYTES: usize = 256;
const TRAIN: usize = 3;

/// Latency gates, in virtual nanoseconds. The base control RTT is
/// ~200 µs; one lost datagram costs a 25 ms retransmit timer. At 0.5 %
/// per-direction loss roughly 1 % of exchanges retry once and ~0.01 %
/// twice, so the structural ceilings below (a handful of back-to-back
/// retries) hold with enormous margin unless the receiver genuinely
/// strands a session.
const SETUP_P99_MAX_NS: u64 = 200_000_000;
const DRAIN_P999_MAX_NS: u64 = 2_000_000_000;
const FETCH_P999_MAX_NS: u64 = 5_000_000_000;

const GLOBAL_BUDGET_BYTES: usize = 256 << 20;

fn addr(s: &str) -> SocketAddr {
    s.parse().unwrap()
}

/// Exact upper quantile of a sorted sample: the smallest value with at
/// least `p` of the mass at or below it.
fn quantile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64) * p).ceil() as usize;
    sorted[idx.clamp(1, sorted.len()) - 1]
}

struct Quantiles {
    p50: u64,
    p99: u64,
    p999: u64,
    max: u64,
}

fn quantiles(mut v: Vec<u64>) -> Quantiles {
    v.sort_unstable();
    Quantiles {
        p50: quantile(&v, 0.50),
        p99: quantile(&v, 0.99),
        p999: quantile(&v, 0.999),
        max: v.last().copied().unwrap_or(0),
    }
}

struct RunStats {
    setup: Quantiles,
    drain: Quantiles,
    fetch: Quantiles,
    records_fetched: u64,
    sessions_completed: u64,
    mem_peak_bytes: usize,
    rejected: u64,
    syns_rejected: u64,
    chunk_nacks: u64,
    fleet_estimate: EstimateReport,
    wall_secs: f64,
}

/// One full soak: open all `sessions`, burst + heartbeat each, query
/// the merged fleet estimate, then fetch every report. Deterministic
/// given (`SEED`, `sessions`, `experiments`): everything observable
/// runs on the virtual clock.
fn run_fleet(sessions: u32, experiments: u64) -> RunStats {
    let started = Instant::now();
    let net = FaultNet::new(SEED);
    let mild = LinkFaults::uniform_loss(LOSS).with_jitter(JITTER);
    let recv = addr(RECV);
    let probe_src = addr(PROBE_SRC);
    net.set_faults(probe_src, recv, mild.clone());
    for i in 0..sessions {
        let ctl: SocketAddr = SocketAddr::new(addr("10.0.0.2:0").ip(), FLEET_PORT0 + i as u16);
        net.set_faults(ctl, recv, mild.clone());
        net.set_faults(recv, ctl, mild.clone());
    }
    let provider = Provider::Fault(net.clone());
    let clock = provider.clock();

    let metrics = Arc::new(Registry::new("fleet_smoke"));
    let server = start_server(ServerConfig {
        provider: provider.clone(),
        idle_timeout: Some(Duration::from_secs(120)),
        metrics: Some(metrics.clone()),
        global_budget_bytes: Some(GLOBAL_BUDGET_BYTES),
        on_pressure: PressurePolicy::Reject,
        ..ServerConfig::any(recv, sessions as usize + 16)
    })
    .expect("start fleet server");

    let params = SessionParams {
        n_slots: (2 * experiments).max(1),
        slot_ns: 1_000_000,
        probe_packets: TRAIN as u8,
        packet_bytes: PACKET_BYTES as u32,
        p: 0.3,
        improved: true,
    };

    // Phase 1: open the whole fleet before any session sends a probe.
    // Session ids and control ports are both `i`-derived, so reruns
    // replay the identical admission sequence.
    let mut clients = Vec::with_capacity(sessions as usize);
    let mut setup_ns = Vec::with_capacity(sessions as usize);
    for i in 0..sessions {
        let mut cfg = ControlConfig::new(recv);
        cfg.provider = provider.clone();
        cfg.bind = Some(SocketAddr::new(
            addr("10.0.0.2:0").ip(),
            FLEET_PORT0 + i as u16,
        ));
        let client = ControlClient::connect(cfg, None).expect("bind control socket");
        let t0 = clock.now();
        client
            .handshake(session_id(i), params)
            .unwrap_or_else(|e| panic!("session {i} refused at setup: {e:?}"));
        setup_ns.push((clock.now() - t0).as_nanos() as u64);
        clients.push(client);
    }

    // Phase 2: per session, a probe burst followed immediately by a
    // heartbeat. Experiment `j` occupies the contiguous slot pair
    // (2j, 2j+1) — the §3 geometry the online estimator assembles —
    // with `TRAIN` packets per slot. The heartbeat ack arrives only
    // after the receiver has drained the burst queued ahead of it on
    // the same socket, so this RTT is the per-session drain latency
    // under fleet load.
    let probe_sock = net.bind(probe_src).expect("bind probe socket");
    let mut buf = [0u8; PACKET_BYTES];
    let mut drain_ns = Vec::with_capacity(sessions as usize);
    for (i, client) in clients.iter().enumerate() {
        let id = session_id(i as u32);
        for j in 0..experiments {
            for k in 0..2u64 {
                let slot = 2 * j + k;
                for idx in 0..TRAIN {
                    ProbeHeader {
                        session: id,
                        experiment: j,
                        slot,
                        seq: slot * TRAIN as u64 + idx as u64,
                        send_ns: clock.now().as_nanos() as u64,
                        idx: idx as u8,
                        probe_len: TRAIN as u8,
                    }
                    .encode_into(&mut buf);
                    probe_sock.send_to(&buf, recv).expect("send probe");
                }
            }
        }
        let t0 = clock.now();
        let mut acked = false;
        for _ in 0..8 {
            if client
                .heartbeat(id, 1, Duration::from_millis(500))
                .expect("heartbeat io")
            {
                acked = true;
                break;
            }
        }
        assert!(acked, "session {i} heartbeat never acked post-burst");
        drain_ns.push((clock.now() - t0).as_nanos() as u64);
    }

    // Phase 2½: one fleet-scope estimate query while every session is
    // still live. All bursts are drained (each session's heartbeat
    // acked behind its own burst), so the merged counters are a pure
    // function of the seed-determined packet deliveries — which puts
    // this reply inside the byte-identical determinism gate.
    let fleet_estimate = clients[0]
        .fetch_estimate(session_id(0), EstimateScope::Fleet)
        .expect("fleet estimate query");
    assert_eq!(
        fleet_estimate.sessions, sessions,
        "fleet estimate must merge every live session"
    );
    assert!(
        fleet_estimate.estimates.experiments > 0,
        "two-slot bursts must assemble online experiments"
    );
    assert!(
        fleet_estimate.estimates.experiments <= sessions as u64 * experiments,
        "merged experiments cannot exceed the offered population"
    );

    // Phase 3: fetch every report — FIN, chunks, closing ack.
    let probes = 2 * experiments;
    let mut fetch_ns = Vec::with_capacity(sessions as usize);
    let mut records_fetched = 0u64;
    for (i, client) in clients.iter().enumerate() {
        let id = session_id(i as u32);
        let t0 = clock.now();
        let (_, records) = client
            .fetch_report(id, probes, probes * TRAIN as u64)
            .unwrap_or_else(|e| panic!("session {i} stranded mid-fetch: {e:?}"));
        fetch_ns.push((clock.now() - t0).as_nanos() as u64);
        records_fetched += records.len() as u64;
    }

    // The closing acks are fire-and-forget; wait (unenrolled, so the
    // virtual world keeps moving) until the server has retired every
    // session before reading its report.
    let completed = metrics.counter("sessions_completed");
    net.unenrolled(|| {
        let deadline = Instant::now() + Duration::from_secs(30);
        while completed.get() < sessions as u64 && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
    });

    let report = server.stop();
    let done = report
        .sessions
        .iter()
        .filter(|s| s.end == SessionEnd::Completed)
        .count();
    assert_eq!(
        done,
        sessions as usize,
        "every session must complete: {done} of {sessions} (ends: {:?})",
        ends_histogram(&report.sessions.iter().map(|s| s.end).collect::<Vec<_>>())
    );

    RunStats {
        setup: quantiles(setup_ns),
        drain: quantiles(drain_ns),
        fetch: quantiles(fetch_ns),
        records_fetched,
        sessions_completed: done as u64,
        mem_peak_bytes: report.mem_peak_bytes,
        rejected: report.rejected,
        syns_rejected: report.syns_rejected,
        chunk_nacks: report.chunk_nacks,
        fleet_estimate,
        wall_secs: started.elapsed().as_secs_f64(),
    }
}

fn session_id(i: u32) -> u32 {
    0x4000_0000 + i
}

fn ends_histogram(ends: &[SessionEnd]) -> Vec<(SessionEnd, usize)> {
    let mut out: Vec<(SessionEnd, usize)> = Vec::new();
    for &e in ends {
        match out.iter_mut().find(|(k, _)| *k == e) {
            Some((_, n)) => *n += 1,
            None => out.push((e, 1)),
        }
    }
    out
}

fn q_json(label: &str, q: &Quantiles) -> String {
    format!(
        "  \"{label}_ns\": {{\"p50\": {}, \"p99\": {}, \"p999\": {}, \"max\": {}}},",
        q.p50, q.p99, q.p999, q.max
    )
}

/// The JSON body minus the fields that legitimately differ between
/// reruns (`quick`, wall time) — this is the string the determinism
/// check compares byte-for-byte.
fn stable_json(sessions: u32, experiments: u64, stats: &RunStats) -> String {
    let est = &stats.fleet_estimate.estimates;
    [
        format!("  \"sessions\": {sessions},"),
        format!("  \"experiments_per_session\": {experiments},"),
        format!("  \"probes_per_session\": {},", 2 * experiments),
        format!("  \"packets_per_probe\": {TRAIN},"),
        format!("  \"packet_bytes\": {PACKET_BYTES},"),
        format!("  \"seed\": {SEED},"),
        format!(
            "  \"faults\": {{\"loss\": {LOSS}, \"jitter_us\": {}, \"base_latency_us\": 100}},",
            JITTER.as_micros()
        ),
        q_json("setup", &stats.setup),
        q_json("drain", &stats.drain),
        q_json("fetch", &stats.fetch),
        format!(
            concat!(
                "  \"server\": {{\"sessions_completed\": {}, \"records_fetched\": {}, ",
                "\"mem_peak_bytes\": {}, \"global_budget_bytes\": {}, \"rejected\": {}, ",
                "\"syns_rejected\": {}, \"chunk_nacks\": {}}},"
            ),
            stats.sessions_completed,
            stats.records_fetched,
            stats.mem_peak_bytes,
            GLOBAL_BUDGET_BYTES,
            stats.rejected,
            stats.syns_rejected,
            stats.chunk_nacks,
        ),
        format!(
            concat!(
                "  \"fleet_estimate\": {{\"sessions_merged\": {}, \"experiments\": {}, ",
                "\"z_sum\": {}, \"basic\": {}, \"extended\": {}, \"r\": {}, \"s\": {}, ",
                "\"u\": {}, \"v\": {}, \"malformed\": {}, \"delay_samples\": {}, ",
                "\"delay_p50_secs\": {}, \"delay_p99_secs\": {}}},"
            ),
            stats.fleet_estimate.sessions,
            est.experiments,
            est.z_sum,
            est.basic_experiments,
            est.extended_experiments,
            est.r,
            est.s,
            est.u,
            est.v,
            est.outcomes_malformed,
            stats.fleet_estimate.delay_samples,
            stats.fleet_estimate.delay_p50_secs,
            stats.fleet_estimate.delay_p99_secs,
        ),
        format!(
            "  \"gate\": {{\"setup_p99_max_ns\": {SETUP_P99_MAX_NS}, \
             \"drain_p999_max_ns\": {DRAIN_P999_MAX_NS}, \
             \"fetch_p999_max_ns\": {FETCH_P999_MAX_NS}, \"gated\": true}}"
        ),
    ]
    .join("\n")
}

fn main() {
    let mut quick = false;
    let mut sessions: Option<u32> = None;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--sessions" => sessions = args.next().and_then(|v| v.parse().ok()),
            "--out" => out = args.next().map(PathBuf::from),
            other => {
                eprintln!(
                    "unknown flag {other} (fleet_smoke [--quick] [--sessions N] [--out PATH])"
                );
                std::process::exit(2);
            }
        }
    }
    let sessions = sessions.unwrap_or(2048);
    let experiments: u64 = if quick { 2 } else { 4 };

    println!(
        "=== fleet_smoke: {sessions} concurrent sessions, {experiments} two-slot experiments \
         each, {:.1}% loss links ===",
        LOSS * 100.0
    );

    let stats = run_fleet(sessions, experiments);
    let payload = stable_json(sessions, experiments, &stats);

    println!(
        "setup  p50 {:>7.1} µs  p99 {:>9.1} µs  p999 {:>9.1} µs",
        stats.setup.p50 as f64 / 1e3,
        stats.setup.p99 as f64 / 1e3,
        stats.setup.p999 as f64 / 1e3,
    );
    println!(
        "drain  p50 {:>7.1} µs  p99 {:>9.1} µs  p999 {:>9.1} µs",
        stats.drain.p50 as f64 / 1e3,
        stats.drain.p99 as f64 / 1e3,
        stats.drain.p999 as f64 / 1e3,
    );
    println!(
        "fetch  p50 {:>7.1} µs  p99 {:>9.1} µs  p999 {:>9.1} µs",
        stats.fetch.p50 as f64 / 1e3,
        stats.fetch.p99 as f64 / 1e3,
        stats.fetch.p999 as f64 / 1e3,
    );
    println!(
        "{} sessions completed, {} records fetched, registry peak {:.2} MiB, {:.1}s wall",
        stats.sessions_completed,
        stats.records_fetched,
        stats.mem_peak_bytes as f64 / (1 << 20) as f64,
        stats.wall_secs,
    );
    println!(
        "fleet estimate: {} sessions merged, {} experiments, F={}, {} delay samples",
        stats.fleet_estimate.sessions,
        stats.fleet_estimate.estimates.experiments,
        stats
            .fleet_estimate
            .estimates
            .frequency()
            .map_or_else(|| "n/a".to_string(), |f| format!("{f:.4}")),
        stats.fleet_estimate.delay_samples,
    );

    // The latency gates: structural ceilings, not hardware measurements
    // (see the consts for the retry arithmetic behind them).
    assert!(
        stats.setup.p99 <= SETUP_P99_MAX_NS,
        "fleet gate: setup p99 {} ns exceeds {SETUP_P99_MAX_NS} ns",
        stats.setup.p99
    );
    assert!(
        stats.drain.p999 <= DRAIN_P999_MAX_NS,
        "fleet gate: drain p999 {} ns exceeds {DRAIN_P999_MAX_NS} ns",
        stats.drain.p999
    );
    assert!(
        stats.fetch.p999 <= FETCH_P999_MAX_NS,
        "fleet gate: fetch p999 {} ns exceeds {FETCH_P999_MAX_NS} ns",
        stats.fetch.p999
    );
    assert!(
        stats.mem_peak_bytes <= GLOBAL_BUDGET_BYTES,
        "fleet gate: registry peak {} exceeds the global budget",
        stats.mem_peak_bytes
    );
    assert!(stats.records_fetched > 0, "fleet gate: no records fetched");

    // Quick mode doubles as the determinism gate: the same seed must
    // reproduce the same virtual-time story byte for byte.
    if quick {
        println!("[determinism check: re-running the identical scenario]");
        let second = run_fleet(sessions, experiments);
        let replay = stable_json(sessions, experiments, &second);
        assert_eq!(
            payload, replay,
            "fleet gate: same-seed rerun produced a different trajectory"
        );
        println!("[determinism check: byte-identical]");
    }

    let json = format!("{{\n  \"name\": \"fleet_smoke\",\n  \"quick\": {quick},\n{payload}\n}}\n");
    let path = out.unwrap_or_else(|| PathBuf::from("BENCH_fleet.json"));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            f.write_all(json.as_bytes()).unwrap();
            println!("[bench json written to {}]", path.display());
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
