//! The live-datapath perf gate: batched vs fallback I/O on loopback,
//! with a JSON trajectory point (`BENCH_live.json`).
//!
//! Three measurements, mirroring the tentpole claims of the batched
//! datapath:
//!
//! 1. **TX zero allocation.** The steady-state sender path — encode a
//!    probe train into a reused buffer, hand it to the kernel with
//!    `send_segments` — is run under a counting global allocator and
//!    must perform **zero** heap allocations per probe. This is a hard
//!    assertion, not just a recorded number.
//! 2. **RX throughput.** Burst-then-drain rounds queue probes into the
//!    receive socket, then drain them through the same
//!    `BatchReceiver` + decode + batch-timestamp loop the live receiver
//!    uses, once per [`IoMode`]. The gate (Linux only — elsewhere both
//!    modes are the same portable path and everything is reported, not
//!    gated) demands the batched path issue ≥ 8× fewer syscalls per
//!    datagram, beat the fallback's packets/sec outright, and allocate
//!    nothing in the drain.
//!
//!    Why the throughput gate is "strictly faster" rather than a fixed
//!    multiple: the achievable speedup is `(w + s) / (w + s/B)` where
//!    `w` is the kernel's per-datagram UDP work (~0.3 µs: skb dequeue,
//!    copy_to_user — paid per datagram *inside* `recvmmsg` too), `s`
//!    the syscall entry/exit cost, and `B` the batch size. On kernels
//!    with entry/exit mitigations (KPTI etc., `s` ≈ 1 µs+) that is
//!    comfortably ≥ 2×; on an unmitigated CPU (`s` ≈ 0.1 µs, this
//!    container reports meltdown "Not affected") the same 32× syscall
//!    reduction can only buy ~1.3×. Gating a hardware constant would
//!    make the bench flaky across fleets, so the gate pins the
//!    structural invariants and the JSON records the measured ratio.
//! 3. **Latency.** Sender and receiver share one monotonic anchor (same
//!    process), so `batch_timestamp - send_stamp` is a true
//!    send-to-timestamp latency; the JSON records its p99 per mode,
//!    which bounds the staleness batch-granular timestamping can add.
//!
//! Syscalls-avoided comes from the ring's own accounting
//! (`datagrams - syscalls`). CI runs this under a hard timeout and
//! uploads the JSON next to `BENCH_sim.json`.
//!
//! ```text
//! live_perf_smoke [--quick] [--packets N] [--out PATH]
//! ```

use badabing_live::batch_io::{set_buffer_sizes, BatchReceiver, BatchSender, IoMode};
use badabing_metrics::Histogram;
use badabing_wire::{ProbeHeader, HEADER_BYTES};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write as _;
use std::net::UdpSocket;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A pass-through allocator that counts every allocation, so the bench
/// can assert the hot paths allocate nothing. Bench-only: the shipped
/// binaries use the system allocator untouched.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counters are relaxed
// atomics with no allocation of their own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const PACKET_BYTES: usize = 600; // the paper-default probe size
const TRAIN: usize = 3; // packets per probe (the improved schedule's N)
const RECV_BATCH: usize = 32;

/// Gate floors (see the module docs for why throughput is gated as
/// "strictly faster" while the syscall reduction carries the multiple).
const MIN_SYSCALL_REDUCTION: f64 = 8.0;
const MIN_SPEEDUP: f64 = 1.1;

const _: () = assert!(PACKET_BYTES >= HEADER_BYTES, "probe must fit its header");

fn header(seq: u64, send_ns: u64, idx: u8) -> ProbeHeader {
    ProbeHeader {
        session: 1,
        experiment: seq / TRAIN as u64,
        slot: seq,
        seq,
        send_ns,
        idx,
        probe_len: TRAIN as u8,
    }
}

/// Phase 1: the steady-state TX loop under the counting allocator.
/// Returns (probes sent, allocations observed during them).
fn tx_alloc_phase(trains: u64) -> (u64, u64) {
    let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
    let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
    tx.connect(sink.local_addr().unwrap()).unwrap();
    set_buffer_sizes(&tx, 1 << 20, 1 << 22);

    let anchor = Instant::now();
    let mut train = vec![0u8; TRAIN * PACKET_BYTES];
    let mut sender = BatchSender::new(TRAIN, IoMode::Auto);
    let mut seq = 0u64;
    let send_train = |sender: &mut BatchSender, train: &mut [u8], seq: &mut u64| {
        for idx in 0..TRAIN {
            let h = header(*seq, anchor.elapsed().as_nanos() as u64, idx as u8);
            *seq += 1;
            h.encode_into(&mut train[idx * PACKET_BYTES..][..PACKET_BYTES]);
        }
        let mut off = 0;
        while off < TRAIN {
            off += sender
                .send_segments(&tx, &train[off * PACKET_BYTES..], PACKET_BYTES, TRAIN - off)
                .unwrap();
        }
    };

    // Warm-up outside the measured window (lazy socket/allocator state).
    for _ in 0..16 {
        send_train(&mut sender, &mut train, &mut seq);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..trains {
        send_train(&mut sender, &mut train, &mut seq);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    (trains, allocs)
}

struct RxResult {
    mode: &'static str,
    batched: bool,
    sent: u64,
    received: u64,
    busy_secs: f64,
    pps: f64,
    syscalls: u64,
    datagrams: u64,
    p99_latency_secs: f64,
    drain_allocs: u64,
}

/// Datagrams queued per round: small enough to fit any kernel rcvbuf
/// (the default `rmem_max` cap is ~200 KiB of true skb footprint), so a
/// burst never drops and the drain sees a deep queue — the regime where
/// batching matters.
const BURST: u64 = 192;

/// Phase 2+3: burst-then-drain rounds. Each round queues [`BURST`]
/// probes into the receive socket, then drains them through the same
/// `BatchReceiver` + decode + batch-timestamp loop the live receiver
/// uses. Only the drain is timed, so the two modes compare pure
/// receive-path cost on identical queue depths. Sender and receiver
/// share one monotonic anchor (same process), making
/// `batch_timestamp - send_stamp` a true send-to-timestamp latency.
fn rx_phase(mode: IoMode, label: &'static str, count: u64) -> RxResult {
    let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
    set_buffer_sizes(&rx, 1 << 22, 1 << 20);
    rx.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
    tx.connect(rx.local_addr().unwrap()).unwrap();
    set_buffer_sizes(&tx, 1 << 20, 1 << 22);

    let anchor = Instant::now();
    let latency = Histogram::latency();
    let mut ring = BatchReceiver::new(RECV_BATCH, mode);
    let mut train = vec![0u8; TRAIN * PACKET_BYTES];
    let mut sender = BatchSender::new(TRAIN, mode);

    let mut sent = 0u64;
    let mut received = 0u64;
    let mut busy = Duration::ZERO;
    let alloc_before = ALLOCS.load(Ordering::Relaxed);
    while sent < count {
        // Queue one burst (untimed: TX cost is phase 1's concern).
        let round_target = BURST.min(count - sent);
        let mut queued = 0u64;
        while queued < round_target {
            for idx in 0..TRAIN {
                let h = header(sent, anchor.elapsed().as_nanos() as u64, idx as u8);
                sent += 1;
                h.encode_into(&mut train[idx * PACKET_BYTES..][..PACKET_BYTES]);
            }
            let mut off = 0;
            while off < TRAIN {
                off += sender
                    .send_segments(&tx, &train[off * PACKET_BYTES..], PACKET_BYTES, TRAIN - off)
                    .unwrap();
            }
            queued += TRAIN as u64;
        }
        // Drain it, timing only the receive path.
        let mut round_received = 0u64;
        while round_received < queued {
            let t0 = Instant::now();
            match ring.recv(&rx) {
                Ok(n) => {
                    // One timestamp per batch — the live receiver's
                    // stamping discipline, and the latency we report.
                    let now_ns = anchor.elapsed().as_nanos() as u64;
                    for i in 0..n {
                        let (data, _) = ring.datagram(i);
                        if let Ok(h) = ProbeHeader::decode(data) {
                            round_received += 1;
                            latency.record_ns(now_ns.saturating_sub(h.send_ns));
                        }
                    }
                    busy += t0.elapsed();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // A dropped datagram (rcvbuf overflow) ends the
                    // round; the pps denominator only counts busy time.
                    break;
                }
                Err(e) => panic!("recv failed: {e}"),
            }
        }
        received += round_received;
    }
    let drain_allocs = ALLOCS.load(Ordering::Relaxed) - alloc_before;

    let busy_secs = busy.as_secs_f64();
    RxResult {
        mode: label,
        batched: ring.is_batched(),
        sent,
        received,
        busy_secs,
        pps: if busy_secs > 0.0 {
            received as f64 / busy_secs
        } else {
            0.0
        },
        syscalls: ring.syscalls(),
        datagrams: ring.datagrams(),
        p99_latency_secs: latency.quantile_secs(0.99).unwrap_or(0.0),
        drain_allocs,
    }
}

fn main() {
    let mut quick = false;
    let mut packets: Option<u64> = None;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--packets" => packets = args.next().and_then(|v| v.parse().ok()),
            "--out" => out = args.next().map(PathBuf::from),
            other => {
                eprintln!(
                    "unknown flag {other} (live_perf_smoke [--quick] [--packets N] [--out PATH])"
                );
                std::process::exit(2);
            }
        }
    }
    let count = packets.unwrap_or(if quick { 60_000 } else { 240_000 });

    println!("=== live_perf_smoke: {count} packets of {PACKET_BYTES} B, trains of {TRAIN} ===");

    // Phase 1: the zero-allocation TX contract.
    let (tx_trains, tx_allocs) = tx_alloc_phase(if quick { 2_000 } else { 10_000 });
    println!(
        "tx: {tx_trains} trains ({} packets), {tx_allocs} heap allocations in steady state",
        tx_trains * TRAIN as u64
    );
    assert_eq!(
        tx_allocs, 0,
        "steady-state sender TX must not allocate (got {tx_allocs} allocations \
         over {tx_trains} trains)"
    );

    // Phases 2+3: receive throughput and latency, fallback first.
    let fallback = rx_phase(IoMode::Fallback, "fallback", count);
    let batched = rx_phase(IoMode::Batched, "batched", count);
    for r in [&fallback, &batched] {
        println!(
            "rx {:>8}: {:>9.0} pkts/s ({} of {} in {:.3}s busy), {} syscalls for {} datagrams \
             (avoided {}), p99 latency {:.1} µs, {} allocs in drain",
            r.mode,
            r.pps,
            r.received,
            r.sent,
            r.busy_secs,
            r.syscalls,
            r.datagrams,
            r.datagrams.saturating_sub(r.syscalls),
            r.p99_latency_secs * 1e6,
            r.drain_allocs,
        );
    }

    let speedup = if fallback.pps > 0.0 {
        batched.pps / fallback.pps
    } else {
        0.0
    };
    // Syscalls per datagram: 1.0 on the fallback path by construction,
    // ~1/RECV_BATCH batched. The reduction ratio is the structural claim
    // of the batched datapath and is hardware-independent.
    let syscall_reduction = if batched.syscalls > 0 && batched.datagrams > 0 {
        (fallback.syscalls as f64 / fallback.datagrams.max(1) as f64)
            / (batched.syscalls as f64 / batched.datagrams as f64)
    } else {
        0.0
    };
    println!("batched/fallback speedup: {speedup:.2}x, syscall reduction: {syscall_reduction:.1}x");
    if batched.batched {
        assert!(
            syscall_reduction >= MIN_SYSCALL_REDUCTION,
            "perf gate: batched path must issue >= {MIN_SYSCALL_REDUCTION}x fewer syscalls \
             per datagram, got {syscall_reduction:.1}x"
        );
        assert!(
            speedup >= MIN_SPEEDUP,
            "perf gate: batched path must beat fallback packets/sec by >= {MIN_SPEEDUP}x, \
             got {speedup:.2}x"
        );
        assert_eq!(
            (fallback.drain_allocs, batched.drain_allocs),
            (0, 0),
            "perf gate: the drain loop must not allocate"
        );
    } else {
        println!("(no batched syscalls on this platform: results reported, not gated)");
    }

    let rx_json = |r: &RxResult| {
        format!(
            concat!(
                "    {{\"mode\": \"{}\", \"batched\": {}, \"packets_sent\": {}, ",
                "\"packets_received\": {}, \"busy_secs\": {:.6}, \"packets_per_sec\": {:.0}, ",
                "\"syscalls\": {}, \"datagrams\": {}, \"syscalls_avoided\": {}, ",
                "\"p99_latency_secs\": {:.9}, \"drain_allocs\": {}}}"
            ),
            r.mode,
            r.batched,
            r.sent,
            r.received,
            r.busy_secs,
            r.pps,
            r.syscalls,
            r.datagrams,
            r.datagrams.saturating_sub(r.syscalls),
            r.p99_latency_secs,
            r.drain_allocs,
        )
    };
    let json = format!(
        concat!(
            "{{\n",
            "  \"name\": \"live_perf_smoke\",\n",
            "  \"quick\": {},\n",
            "  \"packet_bytes\": {},\n",
            "  \"train_packets\": {},\n",
            "  \"recv_batch\": {},\n",
            "  \"tx\": {{\"trains\": {}, \"packets\": {}, \"steady_state_allocs\": {}, ",
            "\"allocs_per_probe\": {}}},\n",
            "  \"rx\": [\n{},\n{}\n  ],\n",
            "  \"gate\": {{\"speedup\": {:.3}, \"min_speedup\": {}, ",
            "\"syscall_reduction\": {:.1}, \"min_syscall_reduction\": {}, ",
            "\"gated\": {}}}\n",
            "}}\n"
        ),
        quick,
        PACKET_BYTES,
        TRAIN,
        RECV_BATCH,
        tx_trains,
        tx_trains * TRAIN as u64,
        tx_allocs,
        tx_allocs / tx_trains.max(1),
        rx_json(&fallback),
        rx_json(&batched),
        speedup,
        MIN_SPEEDUP,
        syscall_reduction,
        MIN_SYSCALL_REDUCTION,
        batched.batched,
    );
    let path = out.unwrap_or_else(|| PathBuf::from("BENCH_live.json"));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            f.write_all(json.as_bytes()).unwrap();
            println!("[bench json written to {}]", path.display());
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
