//! The live-datapath perf gate: fallback vs batched vs GSO/GRO offload
//! I/O on loopback, with a JSON trajectory point (`BENCH_live.json`).
//!
//! Three measurements, mirroring the tentpole claims of the batched
//! datapath:
//!
//! 1. **TX zero allocation.** The steady-state sender path — encode a
//!    probe train into a reused buffer, hand it to the kernel with
//!    `send_segments` — is run under a counting global allocator and
//!    must perform **zero** heap allocations per probe. This is a hard
//!    assertion, not just a recorded number.
//! 2. **RX throughput.** Burst-then-drain rounds queue probes into the
//!    receive socket, then drain them through the same
//!    `BatchReceiver` + decode + batch-timestamp loop the live receiver
//!    uses, once per [`IoMode`]. The gate (Linux only — elsewhere both
//!    modes are the same portable path and everything is reported, not
//!    gated) demands the batched path issue ≥ 8× fewer syscalls per
//!    datagram, beat the fallback's packets/sec outright, and allocate
//!    nothing in the drain.
//!
//!    Why the throughput gate is "strictly faster" rather than a fixed
//!    multiple: the achievable speedup is `(w + s) / (w + s/B)` where
//!    `w` is the kernel's per-datagram UDP work (~0.3 µs: skb dequeue,
//!    copy_to_user — paid per datagram *inside* `recvmmsg` too), `s`
//!    the syscall entry/exit cost, and `B` the batch size. On kernels
//!    with entry/exit mitigations (KPTI etc., `s` ≈ 1 µs+) that is
//!    comfortably ≥ 2×; on an unmitigated CPU (`s` ≈ 0.1 µs, this
//!    container reports meltdown "Not affected") the same 32× syscall
//!    reduction can only buy ~1.3×. Gating a hardware constant would
//!    make the bench flaky across fleets, so the gate pins the
//!    structural invariants and the JSON records the measured ratio.
//! 3. **Latency.** Sender and receiver share one monotonic anchor (same
//!    process), so `batch_timestamp - send_stamp` is a true
//!    send-to-timestamp latency; the JSON records its p99 per mode,
//!    which bounds the staleness batch-granular timestamping can add.
//!
//! The offload tier adds two more rows when the running kernel supports
//! it (probed with [`kernel_offload_caps`], recorded as
//! `"skipped": true` rather than failing elsewhere): `gso` submits each
//! burst as flat super-datagrams that the kernel segments
//! (`UDP_SEGMENT`), and `gso+gro` additionally coalesces on receive
//! (`UDP_GRO`). For those rows the send loop is timed too, because
//! kernel segmentation is a *TX*-side claim: the gate demands the
//! combined (TX + RX) syscalls per packet drop a further ≥ 4× below the
//! batched row's, and the combined packets/sec (received over TX busy +
//! RX busy) beat it outright.
//!
//! Syscalls-avoided comes from the ring's own accounting
//! (`datagrams - syscalls`). CI runs this under a hard timeout and
//! uploads the JSON next to `BENCH_sim.json`.
//!
//! ```text
//! live_perf_smoke [--quick] [--packets N] [--out PATH]
//! ```

use badabing_live::batch_io::{set_buffer_sizes, BatchReceiver, BatchSender, IoMode};
use badabing_live::cmsg::MAX_GSO_SEGMENTS;
use badabing_live::kernel_offload_caps;
use badabing_metrics::Histogram;
use badabing_wire::{ProbeHeader, HEADER_BYTES};
use std::alloc::{GlobalAlloc, Layout, System};
use std::io::Write as _;
use std::net::UdpSocket;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A pass-through allocator that counts every allocation, so the bench
/// can assert the hot paths allocate nothing. Bench-only: the shipped
/// binaries use the system allocator untouched.
struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);

// SAFETY: defers every operation to `System`; the counters are relaxed
// atomics with no allocation of their own.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(new_size as u64, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        ALLOC_BYTES.fetch_add(layout.size() as u64, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

const PACKET_BYTES: usize = 600; // the paper-default probe size
const TRAIN: usize = 3; // packets per probe (the improved schedule's N)
const RECV_BATCH: usize = 32;

/// Gate floors (see the module docs for why throughput is gated as
/// "strictly faster" while the syscall reduction carries the multiple).
const MIN_SYSCALL_REDUCTION: f64 = 8.0;
const MIN_SPEEDUP: f64 = 1.1;
/// The offload rows must cut combined (TX + RX) syscalls per packet at
/// least this much further below the batched row. Structural: a
/// 192-packet burst costs batched 64 sendmmsg + 6 recvmmsg, GSO 3
/// sendmsg + 6 recvmmsg — ~7.8× — so 4× leaves headroom for ring-size
/// drift without ever passing on a path that fell back to sendmmsg.
const MIN_GSO_SYSCALL_REDUCTION: f64 = 4.0;

const _: () = assert!(PACKET_BYTES >= HEADER_BYTES, "probe must fit its header");

fn header(seq: u64, send_ns: u64, idx: u8) -> ProbeHeader {
    ProbeHeader {
        session: 1,
        experiment: seq / TRAIN as u64,
        slot: seq,
        seq,
        send_ns,
        idx,
        probe_len: TRAIN as u8,
    }
}

/// Phase 1: the steady-state TX loop under the counting allocator.
/// Returns (probes sent, allocations observed during them).
fn tx_alloc_phase(trains: u64) -> (u64, u64) {
    let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
    let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
    tx.connect(sink.local_addr().unwrap()).unwrap();
    set_buffer_sizes(&tx, 1 << 20, 1 << 22);

    let anchor = Instant::now();
    let mut train = vec![0u8; TRAIN * PACKET_BYTES];
    let mut sender = BatchSender::new(TRAIN, IoMode::Auto);
    let mut seq = 0u64;
    let send_train = |sender: &mut BatchSender, train: &mut [u8], seq: &mut u64| {
        for idx in 0..TRAIN {
            let h = header(*seq, anchor.elapsed().as_nanos() as u64, idx as u8);
            *seq += 1;
            h.encode_into(&mut train[idx * PACKET_BYTES..][..PACKET_BYTES]);
        }
        let mut off = 0;
        while off < TRAIN {
            off += sender
                .send_segments(&tx, &train[off * PACKET_BYTES..], PACKET_BYTES, TRAIN - off)
                .unwrap();
        }
    };

    // Warm-up outside the measured window (lazy socket/allocator state).
    for _ in 0..16 {
        send_train(&mut sender, &mut train, &mut seq);
    }
    let before = ALLOCS.load(Ordering::Relaxed);
    for _ in 0..trains {
        send_train(&mut sender, &mut train, &mut seq);
    }
    let allocs = ALLOCS.load(Ordering::Relaxed) - before;
    (trains, allocs)
}

struct RxResult {
    mode: &'static str,
    batched: bool,
    sent: u64,
    received: u64,
    busy_secs: f64,
    pps: f64,
    syscalls: u64,
    datagrams: u64,
    p99_latency_secs: f64,
    drain_allocs: u64,
    /// TX-side accounting for the same run: syscalls issued, time spent
    /// in the send loop, and how many trains went out as one GSO
    /// super-datagram (0 for the non-offload rows).
    tx_syscalls: u64,
    tx_busy_secs: f64,
    gso_sends: u64,
    gro_segments_split: u64,
    cmsg_decode_errors: u64,
    rx_kernel_stamped: u64,
}

impl RxResult {
    /// Combined TX + RX syscalls per logical datagram — the structural
    /// cost the offload tier attacks from both sides.
    fn combined_syscalls_per_pkt(&self) -> f64 {
        (self.tx_syscalls + self.syscalls) as f64 / self.datagrams.max(1) as f64
    }

    /// Packets moved per second of combined TX + RX busy time.
    fn combined_pps(&self) -> f64 {
        let busy = self.tx_busy_secs + self.busy_secs;
        if busy > 0.0 {
            self.received as f64 / busy
        } else {
            0.0
        }
    }
}

/// Datagrams queued per round: small enough to fit any kernel rcvbuf
/// (the default `rmem_max` cap is ~200 KiB of true skb footprint), so a
/// burst never drops and the drain sees a deep queue — the regime where
/// batching matters.
const BURST: u64 = 192;

/// Phase 2+3: burst-then-drain rounds. Each round queues [`BURST`]
/// probes into the receive socket, then drains them through the same
/// `BatchReceiver` + decode + batch-timestamp loop the live receiver
/// uses. Only the drain contributes to `busy_secs`, so every mode
/// compares pure receive-path cost on identical queue depths; the send
/// loop is separately timed into `tx_busy_secs` because the GSO rows'
/// claim is a TX-side one. Sender and receiver share one monotonic
/// anchor (same process), making `batch_timestamp - send_stamp` a true
/// send-to-timestamp latency.
///
/// Non-offload modes queue per train of [`TRAIN`] — the live sender's
/// unit of work. GSO modes encode the whole burst into one flat buffer
/// and submit it in `MAX_GSO_SEGMENTS`-sized super-datagrams, which is
/// exactly how a fleet sender amortizes a dense schedule.
fn rx_phase(mode: IoMode, label: &'static str, count: u64) -> RxResult {
    let rx = UdpSocket::bind("127.0.0.1:0").unwrap();
    set_buffer_sizes(&rx, 1 << 22, 1 << 20);
    rx.set_read_timeout(Some(Duration::from_millis(50)))
        .unwrap();
    let tx = UdpSocket::bind("127.0.0.1:0").unwrap();
    tx.connect(rx.local_addr().unwrap()).unwrap();
    set_buffer_sizes(&tx, 1 << 20, 1 << 22);

    let gso = mode.wants_gso();
    let chunk = if gso { BURST as usize } else { TRAIN };
    let anchor = Instant::now();
    let latency = Histogram::latency();
    let mut ring = BatchReceiver::new(RECV_BATCH, mode);
    let mut train = vec![0u8; chunk * PACKET_BYTES];
    let mut sender = BatchSender::new(if gso { MAX_GSO_SEGMENTS } else { TRAIN }, mode);

    let mut sent = 0u64;
    let mut received = 0u64;
    let mut kernel_stamped = 0u64;
    let mut busy = Duration::ZERO;
    let mut tx_busy = Duration::ZERO;
    let alloc_before = ALLOCS.load(Ordering::Relaxed);
    while sent < count {
        // Queue one burst: encode `chunk` packets at a time into the
        // reused buffer, then hand each encoded block to the kernel.
        let round_target = BURST.min(count - sent);
        let mut queued = 0u64;
        while queued < round_target {
            let n = (chunk as u64).min(round_target - queued) as usize;
            for idx in 0..n {
                let h = header(
                    sent,
                    anchor.elapsed().as_nanos() as u64,
                    (idx % TRAIN) as u8,
                );
                sent += 1;
                h.encode_into(&mut train[idx * PACKET_BYTES..][..PACKET_BYTES]);
            }
            let t0 = Instant::now();
            let mut off = 0;
            while off < n {
                off += sender
                    .send_segments(&tx, &train[off * PACKET_BYTES..], PACKET_BYTES, n - off)
                    .unwrap();
            }
            tx_busy += t0.elapsed();
            queued += n as u64;
        }
        // Drain it, timing only the receive path.
        let mut round_received = 0u64;
        while round_received < queued {
            let t0 = Instant::now();
            match ring.recv(&rx) {
                Ok(n) => {
                    // One timestamp per batch — the live receiver's
                    // stamping discipline, and the latency we report.
                    let now_ns = anchor.elapsed().as_nanos() as u64;
                    for i in 0..n {
                        let (data, _) = ring.datagram(i);
                        if ring.stamp_age_ns(i).is_some() {
                            kernel_stamped += 1;
                        }
                        if let Ok(h) = ProbeHeader::decode(data) {
                            round_received += 1;
                            latency.record_ns(now_ns.saturating_sub(h.send_ns));
                        }
                    }
                    busy += t0.elapsed();
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    // A dropped datagram (rcvbuf overflow) ends the
                    // round; the pps denominator only counts busy time.
                    break;
                }
                Err(e) => panic!("recv failed: {e}"),
            }
        }
        received += round_received;
    }
    let drain_allocs = ALLOCS.load(Ordering::Relaxed) - alloc_before;

    let busy_secs = busy.as_secs_f64();
    RxResult {
        mode: label,
        batched: ring.is_batched(),
        sent,
        received,
        busy_secs,
        pps: if busy_secs > 0.0 {
            received as f64 / busy_secs
        } else {
            0.0
        },
        syscalls: ring.syscalls(),
        datagrams: ring.datagrams(),
        p99_latency_secs: latency.quantile_secs(0.99).unwrap_or(0.0),
        drain_allocs,
        tx_syscalls: sender.syscalls(),
        tx_busy_secs: tx_busy.as_secs_f64(),
        gso_sends: sender.gso_sends(),
        gro_segments_split: ring.gro_segments_split(),
        cmsg_decode_errors: ring.cmsg_decode_errors(),
        rx_kernel_stamped: kernel_stamped,
    }
}

fn main() {
    let mut quick = false;
    let mut packets: Option<u64> = None;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--packets" => packets = args.next().and_then(|v| v.parse().ok()),
            "--out" => out = args.next().map(PathBuf::from),
            other => {
                eprintln!(
                    "unknown flag {other} (live_perf_smoke [--quick] [--packets N] [--out PATH])"
                );
                std::process::exit(2);
            }
        }
    }
    let count = packets.unwrap_or(if quick { 60_000 } else { 240_000 });

    println!("=== live_perf_smoke: {count} packets of {PACKET_BYTES} B, trains of {TRAIN} ===");

    // Phase 1: the zero-allocation TX contract.
    let (tx_trains, tx_allocs) = tx_alloc_phase(if quick { 2_000 } else { 10_000 });
    println!(
        "tx: {tx_trains} trains ({} packets), {tx_allocs} heap allocations in steady state",
        tx_trains * TRAIN as u64
    );
    assert_eq!(
        tx_allocs, 0,
        "steady-state sender TX must not allocate (got {tx_allocs} allocations \
         over {tx_trains} trains)"
    );

    // Phases 2+3: receive throughput and latency, fallback first, then
    // the offload rows where the running kernel supports them.
    let caps = kernel_offload_caps();
    let fallback = rx_phase(IoMode::Fallback, "fallback", count);
    let batched = rx_phase(IoMode::Batched, "batched", count);
    let gso = caps
        .gso_ready()
        .then(|| rx_phase(IoMode::Gso, "gso", count));
    let gso_gro = caps
        .gro_ready()
        .then(|| rx_phase(IoMode::GsoGro, "gso+gro", count));
    let rows: Vec<&RxResult> = [
        Some(&fallback),
        Some(&batched),
        gso.as_ref(),
        gso_gro.as_ref(),
    ]
    .into_iter()
    .flatten()
    .collect();
    for r in &rows {
        println!(
            "rx {:>8}: {:>9.0} pkts/s ({} of {} in {:.3}s busy), {} rx + {} tx syscalls for \
             {} datagrams (avoided {}), p99 latency {:.1} µs, {} allocs in drain, \
             {} GSO sends, {} GRO splits, {} kernel-stamped",
            r.mode,
            r.pps,
            r.received,
            r.sent,
            r.busy_secs,
            r.syscalls,
            r.tx_syscalls,
            r.datagrams,
            r.datagrams.saturating_sub(r.syscalls),
            r.p99_latency_secs * 1e6,
            r.drain_allocs,
            r.gso_sends,
            r.gro_segments_split,
            r.rx_kernel_stamped,
        );
    }
    if gso.is_none() {
        println!("rx      gso: skipped (kernel lacks UDP_SEGMENT)");
    }
    if gso_gro.is_none() {
        println!("rx  gso+gro: skipped (kernel lacks UDP_SEGMENT+UDP_GRO)");
    }

    let speedup = if fallback.pps > 0.0 {
        batched.pps / fallback.pps
    } else {
        0.0
    };
    // Syscalls per datagram: 1.0 on the fallback path by construction,
    // ~1/RECV_BATCH batched. The reduction ratio is the structural claim
    // of the batched datapath and is hardware-independent.
    let syscall_reduction = if batched.syscalls > 0 && batched.datagrams > 0 {
        (fallback.syscalls as f64 / fallback.datagrams.max(1) as f64)
            / (batched.syscalls as f64 / batched.datagrams as f64)
    } else {
        0.0
    };
    println!("batched/fallback speedup: {speedup:.2}x, syscall reduction: {syscall_reduction:.1}x");
    if batched.batched {
        assert!(
            syscall_reduction >= MIN_SYSCALL_REDUCTION,
            "perf gate: batched path must issue >= {MIN_SYSCALL_REDUCTION}x fewer syscalls \
             per datagram, got {syscall_reduction:.1}x"
        );
        assert!(
            speedup >= MIN_SPEEDUP,
            "perf gate: batched path must beat fallback packets/sec by >= {MIN_SPEEDUP}x, \
             got {speedup:.2}x"
        );
        assert_eq!(
            (fallback.drain_allocs, batched.drain_allocs),
            (0, 0),
            "perf gate: the drain loop must not allocate"
        );
    } else {
        println!("(no batched syscalls on this platform: results reported, not gated)");
    }

    // The offload gate compares combined TX + RX cost: kernel
    // segmentation is worthless if it just moves syscalls to the other
    // side of the wire.
    let mut gso_reduction = 0.0;
    for r in gso.iter().chain(gso_gro.iter()) {
        let reduction = batched.combined_syscalls_per_pkt() / r.combined_syscalls_per_pkt();
        println!(
            "{} vs batched: combined syscalls/pkt {:.4} vs {:.4} ({reduction:.1}x), \
             combined pps {:.0} vs {:.0}",
            r.mode,
            r.combined_syscalls_per_pkt(),
            batched.combined_syscalls_per_pkt(),
            r.combined_pps(),
            batched.combined_pps(),
        );
        assert!(
            reduction >= MIN_GSO_SYSCALL_REDUCTION,
            "perf gate: {} must cut combined syscalls/pkt >= {MIN_GSO_SYSCALL_REDUCTION}x \
             further than batched, got {reduction:.1}x",
            r.mode
        );
        assert!(
            r.combined_pps() > batched.combined_pps(),
            "perf gate: {} combined pps ({:.0}) must beat batched ({:.0})",
            r.mode,
            r.combined_pps(),
            batched.combined_pps(),
        );
        assert!(
            r.gso_sends > 0,
            "perf gate: {} row must actually exercise UDP_SEGMENT",
            r.mode
        );
        assert_eq!(
            r.drain_allocs, 0,
            "perf gate: the {} drain loop must not allocate",
            r.mode
        );
        assert_eq!(
            r.cmsg_decode_errors, 0,
            "perf gate: {} must decode every cmsg it asked for",
            r.mode
        );
        if r.mode == "gso" {
            gso_reduction = reduction;
        }
    }

    let rx_json = |r: &RxResult| {
        format!(
            concat!(
                "    {{\"mode\": \"{}\", \"batched\": {}, \"skipped\": false, ",
                "\"packets_sent\": {}, ",
                "\"packets_received\": {}, \"busy_secs\": {:.6}, \"packets_per_sec\": {:.0}, ",
                "\"syscalls\": {}, \"datagrams\": {}, \"syscalls_avoided\": {}, ",
                "\"p99_latency_secs\": {:.9}, \"drain_allocs\": {}, ",
                "\"tx_syscalls\": {}, \"tx_busy_secs\": {:.6}, ",
                "\"combined_packets_per_sec\": {:.0}, \"combined_syscalls_per_pkt\": {:.6}, ",
                "\"gso_sends\": {}, \"gro_segments_split\": {}, ",
                "\"cmsg_decode_errors\": {}, \"rx_timestamp_kernel\": {}}}"
            ),
            r.mode,
            r.batched,
            r.sent,
            r.received,
            r.busy_secs,
            r.pps,
            r.syscalls,
            r.datagrams,
            r.datagrams.saturating_sub(r.syscalls),
            r.p99_latency_secs,
            r.drain_allocs,
            r.tx_syscalls,
            r.tx_busy_secs,
            r.combined_pps(),
            r.combined_syscalls_per_pkt(),
            r.gso_sends,
            r.gro_segments_split,
            r.cmsg_decode_errors,
            r.rx_kernel_stamped,
        )
    };
    // Unsupported kernels record a skip, not a failure: the trajectory
    // file stays comparable across fleets with and without offload.
    let skipped_json = |mode: &str, reason: &str| {
        format!("    {{\"mode\": \"{mode}\", \"skipped\": true, \"reason\": \"{reason}\"}}")
    };
    let mut rx_rows = vec![rx_json(&fallback), rx_json(&batched)];
    rx_rows.push(match &gso {
        Some(r) => rx_json(r),
        None => skipped_json("gso", "kernel lacks UDP_SEGMENT"),
    });
    rx_rows.push(match &gso_gro {
        Some(r) => rx_json(r),
        None => skipped_json("gso+gro", "kernel lacks UDP_SEGMENT+UDP_GRO"),
    });
    let json = format!(
        concat!(
            "{{\n",
            "  \"name\": \"live_perf_smoke\",\n",
            "  \"quick\": {},\n",
            "  \"packet_bytes\": {},\n",
            "  \"train_packets\": {},\n",
            "  \"recv_batch\": {},\n",
            "  \"caps\": {{\"udp_segment\": {}, \"udp_gro\": {}, \"so_timestamping\": {}}},\n",
            "  \"tx\": {{\"trains\": {}, \"packets\": {}, \"steady_state_allocs\": {}, ",
            "\"allocs_per_probe\": {}}},\n",
            "  \"rx\": [\n{}\n  ],\n",
            "  \"gate\": {{\"speedup\": {:.3}, \"min_speedup\": {}, ",
            "\"syscall_reduction\": {:.1}, \"min_syscall_reduction\": {}, ",
            "\"gso_syscall_reduction\": {:.1}, \"min_gso_syscall_reduction\": {}, ",
            "\"gated\": {}, \"gso_gated\": {}}}\n",
            "}}\n"
        ),
        quick,
        PACKET_BYTES,
        TRAIN,
        RECV_BATCH,
        caps.udp_segment,
        caps.udp_gro,
        caps.so_timestamping,
        tx_trains,
        tx_trains * TRAIN as u64,
        tx_allocs,
        tx_allocs / tx_trains.max(1),
        rx_rows.join(",\n"),
        speedup,
        MIN_SPEEDUP,
        syscall_reduction,
        MIN_SYSCALL_REDUCTION,
        gso_reduction,
        MIN_GSO_SYSCALL_REDUCTION,
        batched.batched,
        gso.is_some(),
    );
    let path = out.unwrap_or_else(|| PathBuf::from("BENCH_live.json"));
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    match std::fs::File::create(&path) {
        Ok(mut f) => {
            f.write_all(json.as_bytes()).unwrap();
            println!("[bench json written to {}]", path.display());
        }
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    }
}
