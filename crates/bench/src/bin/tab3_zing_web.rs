//! Table 3: ZING vs ground truth under Harpoon-like web traffic.
//!
//! The paper's result: with bursty reactive traffic neither probe rate
//! comes close on frequency, and duration estimates collapse to (near)
//! zero for want of consecutive lost probes.

use badabing_bench::runs::print_zing_table;
use badabing_bench::scenarios::Scenario;
use badabing_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    print_zing_table(
        Scenario::Web,
        &opts,
        900.0,
        180.0,
        "tab3_zing_web",
        "Table 3: ZING with Harpoon web-like traffic",
    );
}
