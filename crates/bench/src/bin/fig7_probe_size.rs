//! Figure 7: probability that an N-packet probe sees no loss while inside
//! a loss episode, for N = 1..10, under infinite-TCP and CBR traffic.
//!
//! The paper's result: with CBR traffic, single-packet probes miss about
//! half the episodes they traverse while 3+-packet probes rarely miss;
//! with TCP traffic the improvement with N is smaller (and very long
//! probes start to perturb the queue — Figure 8's subject).
//!
//! All twenty (traffic, probe size) simulations are independent runner
//! jobs; rows assemble in probe-size order afterwards.

use badabing_bench::runner;
use badabing_bench::scenarios::{self, Scenario, PROBE_FLOW};
use badabing_bench::table::TableWriter;
use badabing_bench::{table, RunOpts};
use badabing_probe::badabing::BadabingReceiver;
use badabing_probe::fixed::{attach_fixed, FixedIntervalProber, ProbeEpisodeStats};
use badabing_sim::topology::Dumbbell;

fn run_one(scenario: Scenario, n_packets: u8, secs: f64, seed: u64) -> (ProbeEpisodeStats, u64) {
    let mut db = Dumbbell::standard();
    scenarios::attach(&mut db, scenario, seed);
    let (prober, receiver) = attach_fixed(&mut db, n_packets, PROBE_FLOW);
    db.run_for(secs + 1.0);
    let gt = db.ground_truth(secs);
    let sent = db.sim.node::<FixedIntervalProber>(prober).sent();
    let arrivals = db.sim.node::<BadabingReceiver>(receiver).arrivals();
    (
        ProbeEpisodeStats::compute(sent, arrivals, &gt.episodes),
        db.sim.dispatched(),
    )
}

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(300.0, 60.0);

    let jobs: Vec<(Scenario, u8)> = (1..=10u8)
        .flat_map(|n| [(Scenario::InfiniteTcp, n), (Scenario::CbrUniform, n)])
        .collect();
    let res = runner::run_jobs(opts.effective_threads(), &jobs, |&(scenario, n)| {
        run_one(scenario, n, secs, opts.seed)
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("fig7_probe_size"));
    w.heading(&format!(
        "Figure 7: P(probe sees no loss | inside a loss episode), {secs:.0}s per point"
    ));
    w.row(&format!(
        "{:>8} {:>22} {:>22}",
        "packets", "infinite TCP traffic", "CBR traffic"
    ));
    w.csv("n_packets,p_no_loss_tcp,p_no_loss_cbr,probes_in_episodes_tcp,probes_in_episodes_cbr");
    for (i, n) in (1..=10u8).enumerate() {
        let tcp = &points[2 * i];
        let cbr = &points[2 * i + 1];
        let fmt = |s: &ProbeEpisodeStats| {
            s.p_no_loss()
                .map_or_else(|| "-".into(), |p| format!("{p:.3}"))
        };
        w.row(&format!("{:>8} {:>22} {:>22}", n, fmt(tcp), fmt(cbr)));
        w.csv(&format!(
            "{n},{},{},{},{}",
            table::csv_cell(tcp.p_no_loss()),
            table::csv_cell(cbr.p_no_loss()),
            tcp.probes_in_episodes,
            cbr.probes_in_episodes,
        ));
    }
    println!("{stat_line}");
    w.finish();
}
