//! Ablation: Reno vs SACK cross traffic.
//!
//! The testbed's Linux 2.4 senders negotiated SACK (the paper's related
//! work opens with NewReno and SACK as fruits of understanding loss).
//! Loss-episode *shape* depends on the recovery style: NewReno flows that
//! take multiple-loss windows can spiral into timeouts (deep queue
//! drains, long episodes), while SACK flows repair in about an RTT and
//! keep the sawtooth tight. This run measures the 40-infinite-source
//! scenario both ways, plus BADABING's accuracy on each.

use badabing_bench::scenarios::PROBE_FLOW;
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::packet::FlowId;
use badabing_sim::time::SimTime;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_tcp::conn::TcpConfig;
use badabing_tcp::node::{attach_flow, TcpFlowNode};

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(600.0, 120.0);
    let mut w = TableWriter::new(&opts.out_path("ablation_sack"));
    w.heading(&format!("Ablation: Reno vs SACK cross traffic ({secs:.0}s, 40 infinite sources)"));
    w.row(&format!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9} {:>10} {:>10}",
        "stack", "true freq", "est freq", "true dur", "est dur", "rtx", "timeouts", "loss rate", "util"
    ));
    w.csv("stack,true_frequency,est_frequency,true_duration_secs,est_duration_secs,retransmits,timeouts,router_loss_rate,utilization");

    for sack in [false, true] {
        let mut db = Dumbbell::standard();
        let mut senders = Vec::new();
        for f in 0..40u32 {
            let cfg = TcpConfig { init_ssthresh: 64.0, sack, ..TcpConfig::default() };
            let start = SimTime::from_secs_f64(f as f64 * 0.001);
            let (snd, _) = attach_flow(&mut db, FlowId(f + 1), cfg, start);
            senders.push(snd);
        }
        let cfg = BadabingConfig::paper_default(0.5);
        let n_slots = (secs / cfg.slot_secs).round() as u64;
        let h = BadabingHarness::attach(&mut db, cfg, n_slots, PROBE_FLOW, seeded(opts.seed, "probe"));
        db.run_for(h.horizon_secs() + 1.0);
        let truth = db.ground_truth(h.horizon_secs());
        let a = h.analyze(&db.sim);
        let (mut rtx, mut timeouts) = (0u64, 0u64);
        for &snd in &senders {
            let conn = db.sim.node::<TcpFlowNode>(snd).conn();
            rtx += conn.retransmits();
            timeouts += conn.timeouts();
        }
        let util = db.monitor().borrow().departs() as f64 * 1500.0 * 8.0
            / (155_520_000.0 * h.horizon_secs());
        let label = if sack { "sack" } else { "reno" };
        w.row(&format!(
            "{:>6} {:>10.4} {} {:>10.3} {} {:>9} {:>9} {:>10.5} {:>10.3}",
            label,
            truth.frequency(),
            badabing_bench::table::cell(a.frequency(), 10, 4),
            truth.mean_duration_secs(),
            badabing_bench::table::cell(a.duration_secs(), 10, 3),
            rtx,
            timeouts,
            truth.router_loss_rate,
            util,
        ));
        w.csv(&format!(
            "{label},{},{},{},{},{rtx},{timeouts},{},{util}",
            truth.frequency(),
            a.frequency().map_or(String::new(), |v| v.to_string()),
            truth.mean_duration_secs(),
            a.duration_secs().map_or(String::new(), |v| v.to_string()),
            truth.router_loss_rate,
        ));
    }
    w.row("(recovery style reshapes the loss process itself: SACK flows hold throughput");
    w.row(" through recovery, so the homogeneous aggregate synchronizes into fewer but");
    w.row(" harsher episodes — whole windows lost, retransmissions dropped, RTO fallbacks —");
    w.row(" while NewReno's deflation spreads mild episodes densely. BADABING tracks the");
    w.row(" truth in both regimes, which is the point: the tool is agnostic to the stack)");
    w.finish();
}
