//! Ablation: Reno vs SACK cross traffic.
//!
//! The testbed's Linux 2.4 senders negotiated SACK (the paper's related
//! work opens with NewReno and SACK as fruits of understanding loss).
//! Loss-episode *shape* depends on the recovery style: NewReno flows that
//! take multiple-loss windows can spiral into timeouts (deep queue
//! drains, long episodes), while SACK flows repair in about an RTT and
//! keep the sawtooth tight. This run measures the 40-infinite-source
//! scenario both ways (one runner job per stack), plus BADABING's
//! accuracy on each.

use badabing_bench::runner;
use badabing_bench::scenarios::PROBE_FLOW;
use badabing_bench::table::TableWriter;
use badabing_bench::{table, RunOpts};
use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::packet::FlowId;
use badabing_sim::time::SimTime;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_tcp::conn::TcpConfig;
use badabing_tcp::node::{attach_flow, TcpFlowNode};

struct StackPoint {
    f_true: f64,
    d_true: f64,
    f_est: Option<f64>,
    d_est: Option<f64>,
    rtx: u64,
    timeouts: u64,
    router_loss_rate: f64,
    util: f64,
}

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(600.0, 120.0);
    let stacks = [false, true];

    let metrics = std::sync::Arc::new(badabing_metrics::Registry::new("ablation_sack"));
    let res = runner::run_jobs(opts.effective_threads(), &stacks, |&sack| {
        let mut db = Dumbbell::standard();
        db.sim.attach_metrics(metrics.clone());
        let mut senders = Vec::new();
        for f in 0..40u32 {
            let cfg = TcpConfig {
                init_ssthresh: 64.0,
                sack,
                ..TcpConfig::default()
            };
            let start = SimTime::from_secs_f64(f as f64 * 0.001);
            let (snd, _) = attach_flow(&mut db, FlowId(f + 1), cfg, start);
            senders.push(snd);
        }
        let cfg = BadabingConfig::paper_default(0.5);
        let n_slots = (secs / cfg.slot_secs).round() as u64;
        let h = BadabingHarness::attach(
            &mut db,
            cfg,
            n_slots,
            PROBE_FLOW,
            seeded(opts.seed, "probe"),
        );
        db.run_for(h.horizon_secs() + 1.0);
        let truth = db.ground_truth(h.horizon_secs());
        let a = h.analyze(&db.sim);
        let (mut rtx, mut timeouts) = (0u64, 0u64);
        for &snd in &senders {
            let conn = db.sim.node::<TcpFlowNode>(snd).conn();
            rtx += conn.retransmits();
            timeouts += conn.timeouts();
        }
        let util = db.monitor().borrow().departs() as f64 * 1500.0 * 8.0
            / (155_520_000.0 * h.horizon_secs());
        let point = StackPoint {
            f_true: truth.frequency(),
            d_true: truth.mean_duration_secs(),
            f_est: a.frequency(),
            d_est: a.duration_secs(),
            rtx,
            timeouts,
            router_loss_rate: truth.router_loss_rate,
            util,
        };
        (point, db.sim.dispatched())
    });
    let stat_line = res.stat_line();
    let metrics_line = res.write_metrics(&metrics, "ablation_sack");
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("ablation_sack"));
    w.heading(&format!(
        "Ablation: Reno vs SACK cross traffic ({secs:.0}s, 40 infinite sources)"
    ));
    w.row(&format!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>9} {:>9} {:>10} {:>10}",
        "stack",
        "true freq",
        "est freq",
        "true dur",
        "est dur",
        "rtx",
        "timeouts",
        "loss rate",
        "util"
    ));
    w.csv("stack,true_frequency,est_frequency,true_duration_secs,est_duration_secs,retransmits,timeouts,router_loss_rate,utilization");

    for (sack, point) in stacks.iter().zip(&points) {
        let label = if *sack { "sack" } else { "reno" };
        w.row(&format!(
            "{:>6} {:>10.4} {} {:>10.3} {} {:>9} {:>9} {:>10.5} {:>10.3}",
            label,
            point.f_true,
            table::cell(point.f_est, 10, 4),
            point.d_true,
            table::cell(point.d_est, 10, 3),
            point.rtx,
            point.timeouts,
            point.router_loss_rate,
            point.util,
        ));
        w.csv(&format!(
            "{label},{},{},{},{},{},{},{},{}",
            point.f_true,
            table::csv_cell(point.f_est),
            point.d_true,
            table::csv_cell(point.d_est),
            point.rtx,
            point.timeouts,
            point.router_loss_rate,
            point.util,
        ));
    }
    w.row("(recovery style reshapes the loss process itself: SACK flows hold throughput");
    w.row(" through recovery, so the homogeneous aggregate synchronizes into fewer but");
    w.row(" harsher episodes — whole windows lost, retransmissions dropped, RTO fallbacks —");
    w.row(" while NewReno's deflation spreads mild episodes densely. BADABING tracks the");
    w.row(" truth in both regimes, which is the point: the tool is agnostic to the stack)");
    println!("{stat_line}");
    println!("{metrics_line}");
    w.finish();
}
