//! Ablation: single-hop vs two-hop paths.
//!
//! §6.2/§7 defer multi-hop behaviour to future work: "it is not yet
//! clear how best to set α for an arbitrary path, when characteristics
//! such as the level of statistical multiplexing or the physical path
//! configuration are unknown." Here probes cross an access hop in front
//! of the OC3 bottleneck. The access hop carries its own (lighter) cross
//! traffic, adding delay variation that is *not* associated with the
//! bottleneck's loss episodes. The two path configurations run as
//! parallel runner jobs.

use badabing_bench::runner;
use badabing_bench::table::TableWriter;
use badabing_bench::{table, RunOpts};
use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::packet::FlowId;
use badabing_sim::tandem::{HopConfig, TandemPath};
use badabing_sim::time::SimDuration;
use badabing_stats::rng::seeded;
use badabing_traffic::cbr::{CbrEpisodeConfig, CbrEpisodeSource, EpisodeLengths};

const PROBE_FLOW: FlowId = FlowId(0xFFFF_0000);

fn oc3_hop() -> HopConfig {
    HopConfig {
        rate_bps: 155_520_000,
        buffer_secs: 0.1,
        prop_delay: SimDuration::from_millis(50),
        cell_bytes: 1500,
    }
}

fn access_hop() -> HopConfig {
    // A faster access link with a modest buffer: delays jitter, no loss.
    HopConfig {
        rate_bps: 622_080_000, // OC12
        buffer_secs: 0.02,
        prop_delay: SimDuration::from_millis(2),
        cell_bytes: 1500,
    }
}

fn run(
    hops: &[HopConfig],
    inject_hop: usize,
    opts: &RunOpts,
    secs: f64,
) -> ((f64, f64, Option<f64>, Option<f64>), u64) {
    let mut path = TandemPath::new(
        hops,
        SimDuration::from_micros(100),
        SimDuration::from_millis(50),
    );
    // CBR loss episodes at the *last* hop (the bottleneck).
    let sink = path.add_node(Box::new(badabing_sim::node::CountingSink::new()));
    path.route_flow(FlowId(1), sink);
    let bottleneck_hop = path.hop(inject_hop);
    let cbr = CbrEpisodeConfig {
        mean_gap_secs: 8.0,
        lengths: EpisodeLengths::Fixed(0.068),
        ..CbrEpisodeConfig::paper_default()
    };
    path.add_node(Box::new(CbrEpisodeSource::new(
        cbr,
        FlowId(1),
        bottleneck_hop,
        SimDuration::from_micros(100),
        seeded(opts.seed, "cbr"),
    )));
    // Light cross traffic on the access hop (40% load, no loss), only
    // relevant on the 2-hop path: it jitters probe delays upstream of the
    // bottleneck.
    if hops.len() > 1 {
        let access = CbrEpisodeConfig {
            mean_gap_secs: 1.0,
            // Pure fill bursts (no sustained loss target): each burst
            // ramps the access queue to its 20 ms limit and stops,
            // contributing delay jitter with only incidental drops.
            lengths: EpisodeLengths::Fixed(0.0),
            burst_factor: 2.0,
            bottleneck_rate_bps: hops[0].rate_bps,
            buffer_secs: hops[0].buffer_secs,
            packet_bytes: 1500,
        };
        let access_sink = path.add_node(Box::new(badabing_sim::node::CountingSink::new()));
        path.route_flow(FlowId(2), access_sink);
        let hop0 = path.hop(0);
        path.add_node(Box::new(CbrEpisodeSource::new(
            access,
            FlowId(2),
            hop0,
            SimDuration::from_micros(100),
            seeded(opts.seed, "access"),
        )));
    }
    let cfg = BadabingConfig::paper_default(0.5);
    let n_slots = (secs / cfg.slot_secs).round() as u64;
    let h = BadabingHarness::attach_tandem(
        &mut path,
        cfg,
        n_slots,
        PROBE_FLOW,
        seeded(opts.seed, "probe"),
    );
    path.run_for(h.horizon_secs() + 1.0);
    let truth = path.ground_truth_end_to_end(h.horizon_secs());
    let a = h.analyze(&path.sim);
    (
        (
            truth.frequency(),
            truth.mean_duration_secs(),
            a.frequency(),
            a.duration_secs(),
        ),
        path.sim.dispatched(),
    )
}

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(600.0, 120.0);

    let single = vec![oc3_hop()];
    let double = vec![access_hop(), oc3_hop()];
    let jobs: Vec<(&str, Vec<HopConfig>, usize)> = vec![("1", single, 0), ("2", double, 1)];
    let res = runner::run_jobs(opts.effective_threads(), &jobs, |(_, hops, inject)| {
        run(hops, *inject, &opts, secs)
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("ablation_multihop"));
    w.heading(&format!(
        "Ablation: path length ({secs:.0}s, CBR episodes at the bottleneck)"
    ));
    w.row(&format!(
        "{:>8} {:>11} {:>11} {:>11} {:>11}",
        "hops", "true freq", "est freq", "true dur", "est dur"
    ));
    w.csv("hops,true_frequency,est_frequency,true_duration_secs,est_duration_secs");

    for ((label, _, _), (tf, td, ef, ed)) in jobs.iter().zip(&points) {
        w.row(&format!(
            "{:>8} {:>11.4} {} {:>11.3} {}",
            label,
            tf,
            table::cell(*ef, 11, 4),
            td,
            table::cell(*ed, 11, 3)
        ));
        w.csv(&format!(
            "{label},{tf},{},{td},{}",
            table::csv_cell(*ef),
            table::csv_cell(*ed)
        ));
    }
    w.row("(the access hop's fill bursts add brief episodes of their own and extra delay");
    w.row(" noise; end-to-end estimates track the combined truth but with larger relative");
    w.row(" error than on the single-hop path — the multi-hop calibration problem of §7)");
    println!("{stat_line}");
    w.finish();
}
