//! Table 1: ZING vs ground truth under 40 infinite TCP sources.
//!
//! The paper's result: ZING reports loss frequency orders of magnitude
//! below truth (0.0005 vs 0.0265) and measures *no* consecutive losses at
//! all, leaving episode duration at zero — because most packets survive a
//! loss episode, Poisson-spaced single packets almost never sample two
//! losses in a row.

use badabing_bench::runs::print_zing_table;
use badabing_bench::scenarios::Scenario;
use badabing_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    print_zing_table(
        Scenario::InfiniteTcp,
        &opts,
        900.0,
        180.0,
        "tab1_zing_tcp",
        "Table 1: ZING with infinite TCP sources",
    );
}
