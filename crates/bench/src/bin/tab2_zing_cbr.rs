//! Table 2: ZING vs ground truth under randomly spaced, constant-duration
//! (68 ms) loss episodes.
//!
//! The paper's result: ZING gets closer here than with TCP traffic —
//! during a CBR-driven episode *every* arriving packet drops, so probes
//! that land in an episode always observe it — but still underestimates
//! both frequency and duration.

use badabing_bench::runs::print_zing_table;
use badabing_bench::scenarios::Scenario;
use badabing_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    print_zing_table(
        Scenario::CbrUniform,
        &opts,
        900.0,
        180.0,
        "tab2_zing_cbr",
        "Table 2: ZING with constant-duration CBR loss episodes",
    );
}
