//! Table 7: the p = 0.1 trade-off between run length N and threshold τ
//! under CBR traffic with uniform 68 ms episodes.
//!
//! The paper compares N ∈ {180 000, 720 000} slots (15 min vs 1 h) with
//! τ ∈ {40, 80} ms, finding only slight improvement from the longer run
//! and most improvement from the larger τ — at p = 0.1 probes are so
//! sparse that τ dominates the marking.
//!
//! One simulation per N (a runner job) is reused for both τ values.

use badabing_bench::runner;
use badabing_bench::runs::{run_badabing, slots_for};
use badabing_bench::scenarios::Scenario;
use badabing_bench::table::TableWriter;
use badabing_bench::{table, RunOpts};
use badabing_core::config::BadabingConfig;
use badabing_core::detector::CongestionDetector;
use badabing_core::estimator::Estimates;

const TAUS_MS: [f64; 2] = [40.0, 80.0];

struct NPoint {
    n_slots: u64,
    f_true: f64,
    d_true: f64,
    /// (est frequency, est duration) per τ, in `TAUS_MS` order.
    per_tau: [(f64, Option<f64>); 2],
}

fn main() {
    let opts = RunOpts::from_args();
    // Paper durations: 900 s and 3600 s. Quick: 180 s and 720 s.
    let (short_secs, long_secs) = if opts.quick {
        (180.0, 720.0)
    } else {
        (900.0, 3600.0)
    };
    let p = 0.1;
    let cfg = BadabingConfig::paper_default(p);

    let durations = [short_secs, long_secs];
    let res = runner::run_jobs(opts.effective_threads(), &durations, |&secs| {
        let n_slots = slots_for(secs, cfg.slot_secs);
        let run = run_badabing(Scenario::CbrUniform, cfg, n_slots, opts.seed);
        let obs = run.harness.observations(&run.db.sim);
        let per_tau = TAUS_MS.map(|tau_ms| {
            let det = CongestionDetector::with_params(cfg.alpha, tau_ms / 1000.0, cfg.owd_window);
            let (log, _) = det.assemble(&obs, n_slots, cfg.slot_secs);
            let est = Estimates::from_log(&log);
            (est.frequency().unwrap_or(0.0), est.duration_secs_basic())
        });
        let point = NPoint {
            n_slots,
            f_true: run.truth.frequency(),
            d_true: run.truth.mean_duration_secs(),
            per_tau,
        };
        (point, run.db.sim.dispatched())
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("tab7_duration_n"));
    w.heading("Table 7: p=0.1, N and tau trade-off (CBR, 68 ms episodes)");
    w.row(&format!(
        "{:>9} {:>8} {:>11} {:>11} {:>11} {:>11}",
        "N", "tau(ms)", "true freq", "est freq", "true dur", "est dur"
    ));
    w.csv("n_slots,tau_ms,true_frequency,est_frequency,true_duration_secs,est_duration_secs");

    for point in &points {
        for (tau_ms, (f_est, d_est)) in TAUS_MS.iter().zip(&point.per_tau) {
            w.row(&format!(
                "{:>9} {:>8.0} {:>11.4} {:>11.4} {:>11.3} {}",
                point.n_slots,
                tau_ms,
                point.f_true,
                f_est,
                point.d_true,
                table::cell(*d_est, 11, 3),
            ));
            w.csv(&format!(
                "{},{tau_ms},{},{f_est},{},{}",
                point.n_slots,
                point.f_true,
                point.d_true,
                table::csv_cell(*d_est)
            ));
        }
    }
    println!("{stat_line}");
    w.finish();
}
