//! Table 5: BADABING loss estimates, CBR traffic with loss episodes of
//! 50, 100 or 150 ms (uniformly chosen), same p sweep as Table 4.
//!
//! The paper's result mirrors Table 4: good frequency for p ≥ 0.3 and
//! duration estimates within 25% of the ~97 ms true mean.

use badabing_bench::runs::print_badabing_table;
use badabing_bench::scenarios::Scenario;
use badabing_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    print_badabing_table(
        Scenario::CbrMulti,
        &opts,
        "tab5_badabing_multi",
        "Table 5: BADABING with 50/100/150 ms loss episodes",
    );
}
