//! Supplementary: the one-way-delay profile of probe traffic.
//!
//! §6.1's detector reasons about where probe delays sit relative to
//! `OWDmax`; this report shows the actual distribution per scenario —
//! bimodal under CBR (idle vs pinned queue), heavy-tailed under web
//! traffic, and sawtooth-filled under synchronized TCP.
//!
//! The three scenarios run as parallel runner jobs.

use badabing_bench::figures::sparkline;
use badabing_bench::runner;
use badabing_bench::runs::{run_badabing, slots_for};
use badabing_bench::scenarios::Scenario;
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_core::config::BadabingConfig;
use badabing_stats::histogram::Histogram;

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(300.0, 90.0);
    let scenarios = [Scenario::InfiniteTcp, Scenario::CbrUniform, Scenario::Web];

    let res = runner::run_jobs(opts.effective_threads(), &scenarios, |&scenario| {
        let cfg = BadabingConfig::paper_default(0.5);
        let n_slots = slots_for(secs, cfg.slot_secs);
        let run = run_badabing(scenario, cfg, n_slots, opts.seed);
        let obs = run.harness.observations(&run.db.sim);
        // Base OWD is ~50 ms of propagation; the queue adds up to 100 ms.
        let mut h = Histogram::new(0.045, 0.165, 48);
        for o in &obs {
            if let Some(owd) = o.owd_max_secs {
                h.push(owd);
            }
        }
        (h, run.db.sim.dispatched())
    });
    let stat_line = res.stat_line();
    let histograms = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("delay_profile"));
    w.heading(&format!(
        "Probe one-way-delay profiles ({secs:.0}s per scenario, p=0.5)"
    ));
    w.csv("scenario,owd_lo_secs,owd_hi_secs,count");

    for (scenario, h) in scenarios.iter().zip(&histograms) {
        let counts: Vec<f64> = h.buckets().iter().map(|&c| c as f64).collect();
        let peak = counts.iter().cloned().fold(0.0, f64::max).max(1.0);
        w.row(&format!(
            "--- {} ({} probes) ---",
            scenario.label(),
            h.count()
        ));
        w.row(&sparkline(&counts, peak, 48));
        w.row(&format!(
            "owd 45..165 ms; median {:.1} ms, p90 {:.1} ms, p99 {:.1} ms, overflow {}",
            h.quantile(0.5).unwrap_or(f64::NAN) * 1000.0,
            h.quantile(0.9).unwrap_or(f64::NAN) * 1000.0,
            h.quantile(0.99).unwrap_or(f64::NAN) * 1000.0,
            h.overflow()
        ));
        for (lo, hi, c) in h.rows() {
            w.csv(&format!("{},{lo:.4},{hi:.4},{c}", scenario.label()));
        }
    }
    println!("{stat_line}");
    w.finish();
}
