//! Dump a packet-level bottleneck trace (the DAG-card view) to CSV.
//!
//! Runs a scenario briefly and writes every enqueue/drop/departure with
//! timestamps and queue occupancy — the raw material the monitor reduces
//! to ground truth, exposed for inspection and external tooling.
//!
//! ```text
//! dump_trace [--scenario cbr|tcp|web] [--seconds 10] [--seed N] [--out PATH]
//! ```

use badabing_bench::scenarios::{self, Scenario};
use badabing_bench::table::TableWriter;
use badabing_sim::monitor::TraceEvent;
use badabing_sim::topology::Dumbbell;
use std::path::PathBuf;

fn main() {
    // Minimal arg handling (this binary takes a --scenario flag the
    // shared RunOpts does not know about).
    let mut scenario = Scenario::CbrUniform;
    let mut seconds = 10.0f64;
    let mut seed = 20050821u64;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => {
                scenario = match args.next().as_deref() {
                    Some("cbr") => Scenario::CbrUniform,
                    Some("tcp") => Scenario::InfiniteTcp,
                    Some("web") => Scenario::Web,
                    other => {
                        eprintln!("unknown scenario {other:?} (use cbr|tcp|web)");
                        std::process::exit(2);
                    }
                }
            }
            "--seconds" => seconds = args.next().and_then(|v| v.parse().ok()).unwrap_or(10.0),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--out" => out = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let mut db = Dumbbell::standard();
    scenarios::attach(&mut db, scenario, seed);
    db.run_for(seconds);

    let path =
        out.unwrap_or_else(|| PathBuf::from(format!("results/trace_{}.csv", scenario.label())));
    let mut w = TableWriter::new(&path);
    w.csv("t_secs,event,packet_id,flow,size_bytes,is_probe,qdelay_secs");
    let monitor = db.monitor();
    let m = monitor.borrow();
    for r in m.records() {
        let event = match r.event {
            TraceEvent::Enqueue => "enqueue",
            TraceEvent::Drop => "drop",
            TraceEvent::Depart => "depart",
        };
        w.csv(&format!(
            "{:.9},{event},{},{},{},{},{:.6}",
            r.t.as_secs_f64(),
            r.packet_id,
            r.flow.0,
            r.size,
            r.is_probe,
            r.qdelay_secs
        ));
    }
    w.row(&format!(
        "dumped {} records ({} enqueues, {} drops, {} departs) over {seconds}s of {}",
        m.records().len(),
        m.enqueues(),
        m.drops(),
        m.departs(),
        scenario.label()
    ));
    w.finish();
}
