//! Dump a packet-level bottleneck trace (the DAG-card view) to CSV.
//!
//! Runs a scenario briefly and writes every enqueue/drop/departure with
//! timestamps and queue occupancy — the raw material the monitor reduces
//! to ground truth, exposed for inspection and external tooling. This is
//! the one consumer that genuinely needs full per-event retention, so it
//! opts the monitor into trace mode explicitly (streaming is the default
//! everywhere else).
//!
//! ```text
//! dump_trace [--scenario cbr|tcp|web] [--seconds 10] [--seed N]
//!            [--limit N] [--out PATH]
//! ```

use badabing_bench::scenarios::{self, Scenario};
use badabing_sim::monitor::TraceEvent;
use badabing_sim::topology::Dumbbell;
use std::fs;
use std::io::{BufWriter, Write as _};
use std::path::PathBuf;

fn main() {
    // Minimal arg handling (this binary takes flags the shared RunOpts
    // does not know about).
    let mut scenario = Scenario::CbrUniform;
    let mut seconds = 10.0f64;
    let mut seed = 20050821u64;
    let mut limit: Option<usize> = None;
    let mut out: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scenario" => {
                scenario = match args.next().as_deref() {
                    Some("cbr") => Scenario::CbrUniform,
                    Some("tcp") => Scenario::InfiniteTcp,
                    Some("web") => Scenario::Web,
                    other => {
                        eprintln!("unknown scenario {other:?} (use cbr|tcp|web)");
                        std::process::exit(2);
                    }
                }
            }
            "--seconds" => seconds = args.next().and_then(|v| v.parse().ok()).unwrap_or(10.0),
            "--seed" => seed = args.next().and_then(|v| v.parse().ok()).unwrap_or(seed),
            "--limit" => limit = args.next().and_then(|v| v.parse().ok()),
            "--out" => out = args.next().map(PathBuf::from),
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let mut db = Dumbbell::standard();
    db.enable_trace();
    scenarios::attach(&mut db, scenario, seed);
    db.run_for(seconds);

    let path =
        out.unwrap_or_else(|| PathBuf::from(format!("results/trace_{}.csv", scenario.label())));
    if let Some(dir) = path.parent() {
        let _ = fs::create_dir_all(dir);
    }
    let file = match fs::File::create(&path) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("cannot write {}: {e}", path.display());
            std::process::exit(1);
        }
    };
    // Hundreds of thousands of rows: buffer, don't syscall per line.
    let mut w = BufWriter::new(file);
    let monitor = db.monitor();
    let m = monitor.borrow();
    let cap = limit.unwrap_or(usize::MAX);
    let mut written = 0usize;
    writeln!(
        w,
        "t_secs,event,packet_id,flow,size_bytes,is_probe,qdelay_secs"
    )
    .unwrap();
    for r in m.records().iter().take(cap) {
        let event = match r.event {
            TraceEvent::Enqueue => "enqueue",
            TraceEvent::Drop => "drop",
            TraceEvent::Depart => "depart",
        };
        writeln!(
            w,
            "{:.9},{event},{},{},{},{},{:.6}",
            r.t.as_secs_f64(),
            r.packet_id,
            r.flow.0,
            r.size,
            r.is_probe,
            r.qdelay_secs
        )
        .unwrap();
        written += 1;
    }
    w.flush().unwrap();
    let total = m.records().len();
    let truncated = if written < total {
        format!(" (limited from {total})")
    } else {
        String::new()
    };
    println!(
        "dumped {written} records{truncated} ({} enqueues, {} drops, {} departs) \
         over {seconds}s of {}; trace buffer {} KiB",
        m.enqueues(),
        m.drops(),
        m.departs(),
        scenario.label(),
        m.records_bytes() / 1024
    );
    println!("\n[csv written to {}]", path.display());
}
