//! Ablation: drop-tail vs RED bottleneck.
//!
//! The §6.1 detector assumes loss coincides with (near-)maximal one-way
//! delay — true for drop-tail, where the buffer must be full to drop.
//! RED decouples them: early drops occur at moderate average occupancy.
//! This run measures how BADABING's estimates degrade when the bottleneck
//! runs AQM, using the web-like workload (CBR's scripted bursts would
//! blow straight past RED's averaging). The two queue disciplines run as
//! parallel runner jobs.

use badabing_bench::runner;
use badabing_bench::scenarios::{self, Scenario, PROBE_FLOW};
use badabing_bench::table::TableWriter;
use badabing_bench::{table, RunOpts};
use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::red::RedConfig;
use badabing_sim::topology::{Dumbbell, DumbbellConfig};
use badabing_stats::rng::seeded;

struct QueuePoint {
    f_true: f64,
    d_true: f64,
    f_est: Option<f64>,
    d_est: Option<f64>,
}

fn run(db: &mut Dumbbell, opts: &RunOpts, secs: f64) -> (QueuePoint, u64) {
    scenarios::attach(db, Scenario::Web, opts.seed);
    let cfg = BadabingConfig::paper_default(0.5);
    let n_slots = (secs / cfg.slot_secs).round() as u64;
    let h = BadabingHarness::attach(db, cfg, n_slots, PROBE_FLOW, seeded(opts.seed, "probe"));
    db.run_for(h.horizon_secs() + 1.0);
    let truth = db.ground_truth(h.horizon_secs());
    let a = h.analyze(&db.sim);
    let point = QueuePoint {
        f_true: truth.frequency(),
        d_true: truth.mean_duration_secs(),
        f_est: a.frequency(),
        d_est: a.duration_secs(),
    };
    (point, db.sim.dispatched())
}

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(600.0, 120.0);
    let queues = ["drop-tail", "red"];

    let res = runner::run_jobs(opts.effective_threads(), &queues, |&queue| {
        let mut db = if queue == "red" {
            Dumbbell::new_red(
                DumbbellConfig::default(),
                RedConfig::default(),
                seeded(opts.seed, "red"),
            )
        } else {
            Dumbbell::standard()
        };
        run(&mut db, &opts, secs)
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("ablation_red"));
    w.heading(&format!(
        "Ablation: drop-tail vs RED bottleneck ({secs:.0}s web traffic, p=0.5)"
    ));
    w.row(&format!(
        "{:>10} {:>11} {:>11} {:>11} {:>11}",
        "queue", "true freq", "est freq", "true dur", "est dur"
    ));
    w.csv("queue,true_frequency,est_frequency,true_duration_secs,est_duration_secs");

    for (label, point) in ["drop-tail", "RED"].iter().zip(&points) {
        w.row(&format!(
            "{:>10} {:>11.4} {} {:>11.3} {}",
            label,
            point.f_true,
            table::cell(point.f_est, 11, 4),
            point.d_true,
            table::cell(point.d_est, 11, 3)
        ));
        w.csv(&format!(
            "{},{},{},{},{}",
            label.to_lowercase(),
            point.f_true,
            table::csv_cell(point.f_est),
            point.d_true,
            table::csv_cell(point.d_est)
        ));
    }
    w.row("(under RED, loss no longer implies near-max delay, weakening the tau/alpha marking)");
    println!("{stat_line}");
    w.finish();
}
