//! Ablation: drop-tail vs RED bottleneck.
//!
//! The §6.1 detector assumes loss coincides with (near-)maximal one-way
//! delay — true for drop-tail, where the buffer must be full to drop.
//! RED decouples them: early drops occur at moderate average occupancy.
//! This run measures how BADABING's estimates degrade when the bottleneck
//! runs AQM, using the web-like workload (CBR's scripted bursts would
//! blow straight past RED's averaging).

use badabing_bench::scenarios::{self, Scenario, PROBE_FLOW};
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::red::RedConfig;
use badabing_sim::topology::{Dumbbell, DumbbellConfig};
use badabing_stats::rng::seeded;

fn run(db: &mut Dumbbell, opts: &RunOpts, secs: f64) -> (f64, f64, Option<f64>, Option<f64>) {
    scenarios::attach(db, Scenario::Web, opts.seed);
    let cfg = BadabingConfig::paper_default(0.5);
    let n_slots = (secs / cfg.slot_secs).round() as u64;
    let h = BadabingHarness::attach(db, cfg, n_slots, PROBE_FLOW, seeded(opts.seed, "probe"));
    db.run_for(h.horizon_secs() + 1.0);
    let truth = db.ground_truth(h.horizon_secs());
    let a = h.analyze(&db.sim);
    (truth.frequency(), truth.mean_duration_secs(), a.frequency(), a.duration_secs())
}

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(600.0, 120.0);
    let mut w = TableWriter::new(&opts.out_path("ablation_red"));
    w.heading(&format!("Ablation: drop-tail vs RED bottleneck ({secs:.0}s web traffic, p=0.5)"));
    w.row(&format!(
        "{:>10} {:>11} {:>11} {:>11} {:>11}",
        "queue", "true freq", "est freq", "true dur", "est dur"
    ));
    w.csv("queue,true_frequency,est_frequency,true_duration_secs,est_duration_secs");

    let mut droptail = Dumbbell::standard();
    let (tf, td, ef, ed) = run(&mut droptail, &opts, secs);
    w.row(&format!(
        "{:>10} {:>11.4} {} {:>11.3} {}",
        "drop-tail",
        tf,
        badabing_bench::table::cell(ef, 11, 4),
        td,
        badabing_bench::table::cell(ed, 11, 3)
    ));
    w.csv(&format!(
        "drop-tail,{tf},{},{td},{}",
        ef.map_or(String::new(), |v| v.to_string()),
        ed.map_or(String::new(), |v| v.to_string())
    ));

    let mut red = Dumbbell::new_red(
        DumbbellConfig::default(),
        RedConfig::default(),
        seeded(opts.seed, "red"),
    );
    let (tf, td, ef, ed) = run(&mut red, &opts, secs);
    w.row(&format!(
        "{:>10} {:>11.4} {} {:>11.3} {}",
        "RED",
        tf,
        badabing_bench::table::cell(ef, 11, 4),
        td,
        badabing_bench::table::cell(ed, 11, 3)
    ));
    w.csv(&format!(
        "red,{tf},{},{td},{}",
        ef.map_or(String::new(), |v| v.to_string()),
        ed.map_or(String::new(), |v| v.to_string())
    ));

    w.row("(under RED, loss no longer implies near-max delay, weakening the tau/alpha marking)");
    w.finish();
}
