//! Figure 5: queue-length time series with randomly spaced,
//! constant-duration (68 ms) loss episodes.
//!
//! Between episodes the queue is empty; each burst fills the buffer in
//! ~50 ms, pins it at capacity for the 68 ms loss period, then drains.
//!
//! A single simulation, run as one runner job for uniform timing and
//! event-rate instrumentation across the experiment suite.

use badabing_bench::figures::{dump_queue_series, episode_summary};
use badabing_bench::runner;
use badabing_bench::scenarios::{build, Scenario};
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(60.0, 30.0);

    let res = runner::run_jobs(opts.effective_threads(), &[()], |&()| {
        let mut db = build(Scenario::CbrUniform, opts.seed);
        db.run_for(secs);
        let gt = db.ground_truth(secs);
        (gt, db.sim.dispatched())
    });
    let stat_line = res.stat_line();
    let gt = &res.into_values()[0];

    let mut w = TableWriter::new(&opts.out_path("fig5_queue_cbr"));
    w.heading("Figure 5: queue length, CBR with constant 68 ms loss episodes");
    let t0 = (secs / 2.0).floor();
    let t1 = (t0 + 10.0).min(secs);
    dump_queue_series(gt, t0, t1, &mut w);
    episode_summary(gt, &w);
    println!("{stat_line}");
    w.finish();
}
