//! Table 6: BADABING loss estimates under Harpoon-like web traffic,
//! same p sweep as Table 4.
//!
//! The paper's result: frequency estimates close to truth except at
//! p = 0.1, durations within ~25% — and unlike the CBR scenarios, no
//! systematic upward trend of estimated frequency with p, because the
//! bursty traffic decouples the threshold parameters from the episode
//! shape.

use badabing_bench::runs::print_badabing_table;
use badabing_bench::scenarios::Scenario;
use badabing_bench::RunOpts;

fn main() {
    let opts = RunOpts::from_args();
    print_badabing_table(
        Scenario::Web,
        &opts,
        "tab6_badabing_web",
        "Table 6: BADABING with Harpoon web-like traffic",
    );
}
