//! Ablation: buffer-allocation model (particle vs byte-exact).
//!
//! Table 1's magnitude depends on unpublished GSR line-card internals:
//! whether a small (64/256-byte) ZING probe consumes buffer like a
//! full-size frame. With particle accounting (1500-byte cells) small
//! probes drop like big ones; with byte-exact accounting they slip into
//! residual headroom and survive congestion that drops full frames — the
//! behaviour the paper's testbed exhibited. This run quantifies the
//! difference on the infinite-TCP scenario, one runner job per cell size.

use badabing_bench::runner;
use badabing_bench::scenarios::{self, Scenario, ZING_FLOW};
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_probe::zing::{attach_zing, zing_report, ZingConfig};
use badabing_sim::topology::{Dumbbell, DumbbellConfig};
use badabing_stats::rng::seeded;

struct CellPoint {
    f_true: f64,
    zing_frequency: f64,
    zing_lost: u64,
    zing_sent: u64,
}

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(600.0, 120.0);
    let cell_sizes = [1u32, 512, 1500];

    let res = runner::run_jobs(opts.effective_threads(), &cell_sizes, |&cell_bytes| {
        let cfg = DumbbellConfig {
            buffer_cell_bytes: cell_bytes,
            ..Default::default()
        };
        let mut db = Dumbbell::new(cfg);
        scenarios::attach(&mut db, Scenario::InfiniteTcp, opts.seed);
        let (p, r) = attach_zing(
            &mut db,
            ZingConfig::paper_10hz(),
            ZING_FLOW,
            seeded(opts.seed, "zing"),
        );
        db.run_for(secs + 1.0);
        let truth = db.ground_truth(secs);
        let report = zing_report(&db.sim, p, r);
        let point = CellPoint {
            f_true: truth.frequency(),
            zing_frequency: report.frequency,
            zing_lost: report.lost,
            zing_sent: report.sent,
        };
        (point, db.sim.dispatched())
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("ablation_buffer_model"));
    w.heading(&format!(
        "Ablation: buffer particle size vs ZING accuracy ({secs:.0}s, infinite TCP)"
    ));
    w.row(&format!(
        "{:>12} {:>11} {:>11} {:>12} {:>12}",
        "cell bytes", "true freq", "zing freq", "zing lost", "ratio"
    ));
    w.csv("cell_bytes,true_frequency,zing_frequency,zing_lost,zing_sent");

    for (cell_bytes, point) in cell_sizes.iter().zip(&points) {
        let ratio = if point.f_true > 0.0 {
            point.zing_frequency / point.f_true
        } else {
            0.0
        };
        w.row(&format!(
            "{:>12} {:>11.4} {:>11.4} {:>12} {:>12.2}",
            cell_bytes, point.f_true, point.zing_frequency, point.zing_lost, ratio
        ));
        w.csv(&format!(
            "{cell_bytes},{},{},{},{}",
            point.f_true, point.zing_frequency, point.zing_lost, point.zing_sent
        ));
    }
    w.row("(byte-exact cells let small probes survive congestion; particles make them drop like frames)");
    println!("{stat_line}");
    w.finish();
}
