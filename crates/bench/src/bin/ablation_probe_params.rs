//! Ablation: probe size (packets per probe × bytes per packet).
//!
//! The paper fixes 3 packets of 600 bytes and defers "the impact of
//! packet size on estimation accuracy" to future work (§6.1 footnote).
//! This sweep measures it: for each (packets, bytes) pair, BADABING at
//! p = 0.5 against the CBR scenario, reporting estimate accuracy and the
//! probe load paid for it.

use badabing_bench::runs::{run_badabing, slots_for};
use badabing_bench::scenarios::Scenario;
use badabing_bench::table::TableWriter;
use badabing_bench::RunOpts;
use badabing_core::config::BadabingConfig;

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(600.0, 120.0);
    let mut w = TableWriter::new(&opts.out_path("ablation_probe_params"));
    w.heading(&format!("Ablation: probe packets x packet bytes ({secs:.0}s CBR, p=0.5)"));
    w.row(&format!(
        "{:>8} {:>7} {:>10} {:>11} {:>11} {:>11} {:>11}",
        "packets", "bytes", "load kb/s", "true freq", "est freq", "true dur", "est dur"
    ));
    w.csv("probe_packets,packet_bytes,load_bps,true_frequency,est_frequency,true_duration_secs,est_duration_secs");

    for packets in [1u8, 3, 10] {
        for bytes in [100u32, 600, 1500] {
            let cfg = BadabingConfig {
                probe_packets: packets,
                packet_bytes: bytes,
                ..BadabingConfig::paper_default(0.5)
            };
            let n_slots = slots_for(secs, cfg.slot_secs);
            let run = run_badabing(Scenario::CbrUniform, cfg, n_slots, opts.seed);
            let f_true = run.truth.frequency();
            let d_true = run.truth.mean_duration_secs();
            let f_est = run.analysis.frequency().unwrap_or(0.0);
            let d_est = run.analysis.duration_secs();
            w.row(&format!(
                "{:>8} {:>7} {:>10.0} {:>11.4} {:>11.4} {:>11.3} {}",
                packets,
                bytes,
                run.load_bps / 1000.0,
                f_true,
                f_est,
                d_true,
                badabing_bench::table::cell(d_est, 11, 3),
            ));
            w.csv(&format!(
                "{packets},{bytes},{},{f_true},{f_est},{d_true},{}",
                run.load_bps,
                d_est.map_or(String::new(), |v| v.to_string())
            ));
        }
    }
    w.row("(1-packet probes under-detect; oversized probes pay load without gaining accuracy)");
    w.finish();
}
