//! Ablation: probe size (packets per probe × bytes per packet).
//!
//! The paper fixes 3 packets of 600 bytes and defers "the impact of
//! packet size on estimation accuracy" to future work (§6.1 footnote).
//! This sweep measures it: for each (packets, bytes) pair, BADABING at
//! p = 0.5 against the CBR scenario, reporting estimate accuracy and the
//! probe load paid for it.
//!
//! All nine (packets, bytes) pairs are independent runner jobs.

use badabing_bench::runner;
use badabing_bench::runs::{run_badabing, slots_for};
use badabing_bench::scenarios::Scenario;
use badabing_bench::table::TableWriter;
use badabing_bench::{table, RunOpts};
use badabing_core::config::BadabingConfig;

struct ParamPoint {
    load_bps: f64,
    f_true: f64,
    d_true: f64,
    f_est: f64,
    d_est: Option<f64>,
}

fn main() {
    let opts = RunOpts::from_args();
    let secs = opts.duration(600.0, 120.0);

    let jobs: Vec<(u8, u32)> = [1u8, 3, 10]
        .iter()
        .flat_map(|&packets| [100u32, 600, 1500].map(|bytes| (packets, bytes)))
        .collect();
    let res = runner::run_jobs(opts.effective_threads(), &jobs, |&(packets, bytes)| {
        let cfg = BadabingConfig {
            probe_packets: packets,
            packet_bytes: bytes,
            ..BadabingConfig::paper_default(0.5)
        };
        let n_slots = slots_for(secs, cfg.slot_secs);
        let run = run_badabing(Scenario::CbrUniform, cfg, n_slots, opts.seed);
        let point = ParamPoint {
            load_bps: run.load_bps,
            f_true: run.truth.frequency(),
            d_true: run.truth.mean_duration_secs(),
            f_est: run.analysis.frequency().unwrap_or(0.0),
            d_est: run.analysis.duration_secs(),
        };
        (point, run.db.sim.dispatched())
    });
    let stat_line = res.stat_line();
    let points = res.into_values();

    let mut w = TableWriter::new(&opts.out_path("ablation_probe_params"));
    w.heading(&format!(
        "Ablation: probe packets x packet bytes ({secs:.0}s CBR, p=0.5)"
    ));
    w.row(&format!(
        "{:>8} {:>7} {:>10} {:>11} {:>11} {:>11} {:>11}",
        "packets", "bytes", "load kb/s", "true freq", "est freq", "true dur", "est dur"
    ));
    w.csv("probe_packets,packet_bytes,load_bps,true_frequency,est_frequency,true_duration_secs,est_duration_secs");

    for (&(packets, bytes), point) in jobs.iter().zip(&points) {
        w.row(&format!(
            "{:>8} {:>7} {:>10.0} {:>11.4} {:>11.4} {:>11.3} {}",
            packets,
            bytes,
            point.load_bps / 1000.0,
            point.f_true,
            point.f_est,
            point.d_true,
            table::cell(point.d_est, 11, 3),
        ));
        w.csv(&format!(
            "{packets},{bytes},{},{},{},{},{}",
            point.load_bps,
            point.f_true,
            point.f_est,
            point.d_true,
            table::csv_cell(point.d_est)
        ));
    }
    w.row("(1-packet probes under-detect; oversized probes pay load without gaining accuracy)");
    println!("{stat_line}");
    w.finish();
}
