use badabing_sim::event::{Event, EventQueue, QueueKind};
use badabing_sim::{NodeId, SimTime};
use badabing_stats::rng::seeded;
use rand::RngExt;
use std::hint::black_box;
use std::time::Instant;

const WORKING_SET: usize = 4_096;
const OPS: usize = 100_000;

fn run(kind: QueueKind) -> f64 {
    let mut q = EventQueue::with_kind(kind);
    let mut rng = seeded(7, "bench-eventq");
    for i in 0..WORKING_SET {
        let at = SimTime::from_nanos(rng.random::<u64>() % 2_000_000);
        q.push(at, NodeId(i % 16), Event::Timer(i as u64));
    }
    let t0 = Instant::now();
    for i in 0..OPS {
        let (now, _, _) = q.pop().expect("queue never drains");
        // The simulator's delay mix: mostly serialization/propagation
        // gaps (sub-100 us), a broad band of RTT-scale acks and timers
        // (1-60 ms), and rare second-scale timers.
        let r = rng.random::<u64>();
        let delay = if i % 64 == 0 {
            2_000_000_000 + r % 1_000_000_000
        } else if i % 8 < 5 {
            r % 100_000
        } else {
            1_000_000 + r % 59_000_000
        };
        q.push(
            SimTime::from_nanos(now.as_nanos() + delay),
            NodeId(i % 16),
            Event::Timer(i as u64),
        );
    }
    black_box(q.len());
    t0.elapsed().as_secs_f64() * 1e3
}

fn main() {
    let rounds: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(30);
    let (mut h_min, mut c_min) = (f64::MAX, f64::MAX);
    for _ in 0..rounds {
        h_min = h_min.min(run(QueueKind::Heap));
        c_min = c_min.min(run(QueueKind::Calendar));
    }
    println!(
        "heap     min {:.3} ms  ({:.2}M elem/s)",
        h_min,
        OPS as f64 / h_min / 1e3
    );
    println!(
        "calendar min {:.3} ms  ({:.2}M elem/s)",
        c_min,
        OPS as f64 / c_min / 1e3
    );
    println!("ratio (cal/heap): {:.3}", c_min / h_min);
}
