//! Shared parallel replicate runner.
//!
//! Every table/figure binary decomposes into independent simulation jobs
//! — one per probe rate, scenario, parameter combination, or replication
//! seed. [`run_jobs`] fans those jobs out over a scoped worker pool and
//! hands the results back **in submission order**, so a binary's output
//! is bit-identical at any `--threads` value: parallelism changes only
//! which core runs a job, never what the job computes or where its row
//! lands.
//!
//! Determinism contract:
//!
//! * each job is a pure function of its input (seeds included) — workers
//!   share nothing and the pool injects nothing;
//! * results are collected into a slot vector indexed by submission
//!   position, so aggregation order is independent of completion order;
//! * replication seeds come from [`rep_seed`], a fixed SplitMix64 mix of
//!   `(base seed, replication index)` with replication 0 mapping to the
//!   base seed itself — `--reps 1` reproduces the unreplicated run
//!   exactly.
//!
//! Instrumentation: each job records wall time and the number of
//! simulator events it dispatched; [`RunnerResult::stat_line`] renders
//! the pool-level digest (`[runner: ...]`) that `summarize` lifts into
//! the experiment digest. Stat lines go to stdout only, never into the
//! CSV mirrors — timings are not part of the deterministic output.

use badabing_stats::summary::Summary;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Upper bucket edges for per-job wall time: experiment jobs span sub-ms
/// analysis passes to multi-minute paper-duration simulations.
const JOB_WALL_BOUNDS_SECS: [f64; 10] = [0.01, 0.03, 0.1, 0.3, 1.0, 3.0, 10.0, 30.0, 100.0, 300.0];

/// Instrumentation for one completed job.
#[derive(Debug, Clone, Copy)]
pub struct JobStats {
    /// Wall-clock time the job took on its worker thread.
    pub wall_secs: f64,
    /// Simulator events the job dispatched (0 for analysis-only jobs).
    pub events: u64,
}

/// One completed job: the worker's output plus its instrumentation.
#[derive(Debug)]
pub struct JobOutput<T> {
    /// What the worker returned.
    pub value: T,
    /// Wall time and event count for this job.
    pub stats: JobStats,
}

/// All jobs of one [`run_jobs`] call, in submission order.
#[derive(Debug)]
pub struct RunnerResult<T> {
    /// Per-job outputs, indexed exactly like the submitted jobs.
    pub outputs: Vec<JobOutput<T>>,
    /// Wall-clock time for the whole pool.
    pub wall_secs: f64,
    /// Worker threads actually used.
    pub threads: usize,
}

impl<T> RunnerResult<T> {
    /// Strip the instrumentation, keeping the values in submission order.
    pub fn into_values(self) -> Vec<T> {
        self.outputs.into_iter().map(|o| o.value).collect()
    }

    /// Sum of per-job wall times (the pool's total busy time).
    pub fn busy_secs(&self) -> f64 {
        self.outputs.iter().map(|o| o.stats.wall_secs).sum()
    }

    /// Total simulator events dispatched across all jobs.
    pub fn events(&self) -> u64 {
        self.outputs.iter().map(|o| o.stats.events).sum()
    }

    /// Fold the pool instrumentation into `reg`: job and thread counts,
    /// total simulator events, and per-job wall-time samples. Combined
    /// with the engine counters that accumulate in the same registry
    /// during the run (see `Simulator::attach_metrics`), the snapshot is
    /// the run's complete observability record.
    pub fn record_metrics(&self, reg: &badabing_metrics::Registry) {
        reg.counter("runner_jobs").add(self.outputs.len() as u64);
        reg.counter("runner_threads").add(self.threads as u64);
        reg.counter("sim_events").add(self.events());
        let wall = reg.histogram_with("job_wall_secs", &JOB_WALL_BOUNDS_SECS);
        for o in &self.outputs {
            wall.record_secs(o.stats.wall_secs);
        }
        reg.histogram_with("pool_wall_secs", &JOB_WALL_BOUNDS_SECS)
            .record_secs(self.wall_secs);
    }

    /// Fold the pool instrumentation into `reg` and write the snapshot to
    /// `results/metrics/<name>.json` (the directory `summarize` scans).
    /// Returns the `[metrics: ...]` stdout line; IO failures degrade to a
    /// warning line rather than aborting the experiment.
    pub fn write_metrics(&self, reg: &badabing_metrics::Registry, name: &str) -> String {
        self.record_metrics(reg);
        let path = crate::RunOpts::metrics_path(name);
        match reg.save(&path) {
            Ok(()) => format!("[metrics: {}]", path.display()),
            Err(e) => format!("[metrics: cannot write {}: {e}]", path.display()),
        }
    }

    /// The `[runner: ...]` digest line for stdout (`summarize` collects
    /// these). Timings vary run to run; this line never enters a CSV.
    pub fn stat_line(&self) -> String {
        let busy = self.busy_secs();
        let events = self.events();
        let rate = if busy > 0.0 {
            events as f64 / busy
        } else {
            0.0
        };
        format!(
            "[runner: {} jobs on {} threads, {:.2}s wall, {:.2}s busy, {} events, {:.0} events/s]",
            self.outputs.len(),
            self.threads,
            self.wall_secs,
            busy,
            events,
            rate,
        )
    }
}

/// Run `jobs` through `worker` on a pool of `threads` scoped threads and
/// return the outputs in submission order.
///
/// The worker maps one job to `(value, events_dispatched)`; it runs on an
/// arbitrary pool thread, so everything it needs must come from the job
/// itself. Workers pull jobs from a shared cursor (no pre-partitioning),
/// so a slow job never strands work behind it.
pub fn run_jobs<J, T, F>(threads: usize, jobs: &[J], worker: F) -> RunnerResult<T>
where
    J: Sync,
    T: Send,
    F: Fn(&J) -> (T, u64) + Sync,
{
    let threads = threads.max(1).min(jobs.len().max(1));
    let started = Instant::now();
    let cursor = AtomicUsize::new(0);
    let slots: Vec<Mutex<Option<JobOutput<T>>>> = jobs.iter().map(|_| Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let i = cursor.fetch_add(1, Ordering::Relaxed);
                if i >= jobs.len() {
                    break;
                }
                let t0 = Instant::now();
                let (value, events) = worker(&jobs[i]);
                let stats = JobStats {
                    wall_secs: t0.elapsed().as_secs_f64(),
                    events,
                };
                *slots[i].lock().expect("result slot poisoned") = Some(JobOutput { value, stats });
            });
        }
    });

    let outputs = slots
        .into_iter()
        .map(|m| {
            m.into_inner()
                .expect("result slot poisoned")
                .expect("job completed")
        })
        .collect();
    RunnerResult {
        outputs,
        wall_secs: started.elapsed().as_secs_f64(),
        threads,
    }
}

/// The master seed for replication `rep` of a run seeded with `base`.
///
/// Replication 0 is the base seed itself, so a single-replication run is
/// byte-identical to the historical unreplicated output; later
/// replications are SplitMix64-separated, far apart in seed space no
/// matter how close the base seeds of two experiments sit.
pub fn rep_seed(base: u64, rep: u32) -> u64 {
    if rep == 0 {
        return base;
    }
    let mut z = base.wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(rep)));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Run `f` once per replication seed (see [`rep_seed`]) on the pool.
pub fn replicate<T, F>(threads: usize, base_seed: u64, reps: u32, f: F) -> RunnerResult<T>
where
    T: Send,
    F: Fn(u64) -> (T, u64) + Sync,
{
    let seeds: Vec<u64> = (0..reps.max(1)).map(|r| rep_seed(base_seed, r)).collect();
    run_jobs(threads, &seeds, |s| f(*s))
}

/// Mean ± standard deviation over the replications that produced a value.
#[derive(Debug, Clone, Copy)]
pub struct MeanSd {
    /// Sample mean.
    pub mean: f64,
    /// Population standard deviation (0 for a single sample).
    pub sd: f64,
    /// Replications that contributed (the rest reported no value).
    pub n: u64,
}

impl MeanSd {
    /// Fixed-width table cell: the bare mean for a single replication
    /// (matching the unreplicated format), `mean±sd` otherwise.
    pub fn cell(&self, width: usize, precision: usize) -> String {
        if self.n <= 1 {
            format!("{:>width$.precision$}", self.mean)
        } else {
            format!(
                "{:>width$}",
                format!("{:.precision$}±{:.precision$}", self.mean, self.sd)
            )
        }
    }

    /// CSV value for the mean.
    pub fn csv_mean(&self) -> String {
        self.mean.to_string()
    }

    /// CSV value for the standard deviation.
    pub fn csv_sd(&self) -> String {
        self.sd.to_string()
    }
}

/// Aggregate one per-replication quantity. `None` entries (a replication
/// had nothing to report) are skipped; the result is `None` only when
/// every replication came up empty.
pub fn aggregate<I: IntoIterator<Item = Option<f64>>>(samples: I) -> Option<MeanSd> {
    let mut s = Summary::new();
    for x in samples.into_iter().flatten() {
        s.push(x);
    }
    if s.count() == 0 {
        None
    } else {
        Some(MeanSd {
            mean: s.mean(),
            sd: s.std_dev(),
            n: s.count(),
        })
    }
}

/// [`aggregate`] over plain (always-present) samples.
pub fn aggregate_all<I: IntoIterator<Item = f64>>(samples: I) -> MeanSd {
    aggregate(samples.into_iter().map(Some)).unwrap_or(MeanSd {
        mean: 0.0,
        sd: 0.0,
        n: 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_arrive_in_submission_order() {
        let jobs: Vec<u64> = (0..33).collect();
        for threads in [1, 3, 8] {
            let res = run_jobs(threads, &jobs, |&j| (j * j, j));
            let values = res.into_values();
            let expect: Vec<u64> = jobs.iter().map(|j| j * j).collect();
            assert_eq!(values, expect, "order broken at {threads} threads");
        }
    }

    #[test]
    fn thread_count_never_changes_values() {
        // The determinism contract: same jobs, any pool width, same
        // output vector.
        let jobs: Vec<u64> = (0..64).collect();
        let worker = |&j: &u64| (rep_seed(j, 3), 1u64);
        let one = run_jobs(1, &jobs, worker).into_values();
        let many = run_jobs(7, &jobs, worker).into_values();
        assert_eq!(one, many);
    }

    #[test]
    fn pool_caps_threads_at_job_count() {
        let res = run_jobs(16, &[1u64, 2], |&j| (j, 0u64));
        assert_eq!(res.threads, 2);
        let empty = run_jobs(4, &[] as &[u64], |&j| (j, 0u64));
        assert_eq!(empty.outputs.len(), 0);
    }

    #[test]
    fn stats_accumulate_events() {
        let res = run_jobs(2, &[10u64, 20, 30], |&j| ((), j));
        assert_eq!(res.events(), 60);
        assert!(res.busy_secs() >= 0.0);
        let line = res.stat_line();
        assert!(line.starts_with("[runner: 3 jobs"), "{line}");
        assert!(line.contains("60 events"), "{line}");
    }

    #[test]
    fn record_metrics_folds_pool_stats() {
        let res = run_jobs(2, &[10u64, 20, 30], |&j| ((), j));
        let reg = badabing_metrics::Registry::new("pool");
        res.record_metrics(&reg);
        assert_eq!(reg.counter("runner_jobs").get(), 3);
        assert_eq!(reg.counter("runner_threads").get(), 2);
        assert_eq!(reg.counter("sim_events").get(), 60);
        let wall = reg.histogram_with("job_wall_secs", &JOB_WALL_BOUNDS_SECS);
        assert_eq!(wall.count(), 3, "one wall-time sample per job");
        let pool = reg.histogram_with("pool_wall_secs", &JOB_WALL_BOUNDS_SECS);
        assert_eq!(pool.count(), 1);
    }

    #[test]
    fn rep_zero_is_the_base_seed() {
        assert_eq!(rep_seed(20050821, 0), 20050821);
        assert_ne!(rep_seed(20050821, 1), 20050821);
        // Distinct reps get distinct seeds, and nearby bases stay apart.
        assert_ne!(rep_seed(7, 1), rep_seed(7, 2));
        assert_ne!(rep_seed(7, 1), rep_seed(8, 1));
    }

    #[test]
    fn replicate_passes_derived_seeds() {
        let res = replicate(4, 99, 3, |seed| (seed, 0u64));
        let seeds = res.into_values();
        assert_eq!(
            seeds,
            vec![rep_seed(99, 0), rep_seed(99, 1), rep_seed(99, 2)]
        );
        // reps 0 is clamped to one replication.
        assert_eq!(replicate(1, 99, 0, |seed| (seed, 0u64)).outputs.len(), 1);
    }

    #[test]
    fn aggregate_hand_computed() {
        let m = aggregate([Some(2.0), None, Some(4.0)]).unwrap();
        assert_eq!(m.n, 2);
        assert!((m.mean - 3.0).abs() < 1e-12);
        assert!((m.sd - 1.0).abs() < 1e-12);
        assert!(aggregate([None, None]).is_none());
        let all = aggregate_all([5.0]);
        assert_eq!(all.n, 1);
        assert_eq!(all.cell(8, 2), "    5.00");
        let two = aggregate_all([1.0, 3.0]);
        assert_eq!(two.cell(12, 1), "     2.0±1.0");
    }
}
