//! Table printing and CSV capture.

use std::fs;
use std::io::Write as _;
use std::path::Path;

/// A simple table writer: prints aligned rows to stdout and mirrors them
/// into a CSV file under `results/`.
pub struct TableWriter {
    csv: Option<fs::File>,
    csv_path: Option<std::path::PathBuf>,
}

impl TableWriter {
    /// Create a writer that mirrors rows into `path` (directories are
    /// created as needed). Falls back to stdout-only (with a warning) if
    /// the file cannot be created.
    pub fn new(path: &Path) -> Self {
        if let Some(dir) = path.parent() {
            let _ = fs::create_dir_all(dir);
        }
        match fs::File::create(path) {
            Ok(f) => Self {
                csv: Some(f),
                csv_path: Some(path.to_path_buf()),
            },
            Err(e) => {
                eprintln!("warning: cannot write {}: {e}", path.display());
                Self {
                    csv: None,
                    csv_path: None,
                }
            }
        }
    }

    /// A stdout-only writer.
    pub fn stdout_only() -> Self {
        Self {
            csv: None,
            csv_path: None,
        }
    }

    /// Print a heading (stdout only).
    pub fn heading(&self, text: &str) {
        println!("\n=== {text} ===");
    }

    /// Print a display row (stdout only).
    pub fn row(&self, text: &str) {
        println!("{text}");
    }

    /// Append a CSV line (file only).
    pub fn csv(&mut self, line: &str) {
        if let Some(f) = &mut self.csv {
            let _ = writeln!(f, "{line}");
        }
    }

    /// Print a row and mirror a CSV line.
    pub fn row_csv(&mut self, display: &str, csv_line: &str) {
        self.row(display);
        self.csv(csv_line);
    }

    /// Note where the CSV went.
    pub fn finish(self) {
        if let Some(p) = self.csv_path {
            println!("\n[csv written to {}]", p.display());
        }
    }
}

/// Format an `Option<f64>` for a table cell (the paper prints 0 where a
/// tool had nothing to report; estimators distinguish "no data" with `-`).
pub fn cell(v: Option<f64>, width: usize, precision: usize) -> String {
    match v {
        Some(x) => format!("{x:>width$.precision$}"),
        None => format!("{:>width$}", "-"),
    }
}

/// Format an `Option<f64>` for a CSV field. A missing value becomes the
/// `nan` sentinel — never an empty field, so rows keep a fixed arity and
/// every numeric parser (including pandas/numpy) reads the hole as NaN.
/// The text tables keep `-` (see [`cell`]); `nan` is the CSV-side
/// spelling of the same hole.
pub fn csv_cell(v: Option<f64>) -> String {
    match v {
        Some(x) => x.to_string(),
        None => "nan".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_is_mirrored() {
        let dir = std::env::temp_dir().join("badabing-table-test");
        let path = dir.join("t.csv");
        let mut w = TableWriter::new(&path);
        w.row_csv("pretty", "a,b,c");
        w.csv("1,2,3");
        w.finish();
        let content = fs::read_to_string(&path).unwrap();
        assert_eq!(content, "a,b,c\n1,2,3\n");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn cell_formats() {
        assert_eq!(cell(Some(0.0069), 10, 4), "    0.0069");
        assert_eq!(cell(None, 6, 2), "     -");
    }

    #[test]
    fn csv_cell_uses_nan_sentinel() {
        assert_eq!(csv_cell(Some(0.25)), "0.25");
        assert_eq!(csv_cell(None), "nan");
        // Full-row shape: missing values never shrink the field count.
        let row = format!("{},{},{}", 0.1, csv_cell(None), csv_cell(Some(3.0)));
        assert_eq!(row, "0.1,nan,3");
        assert_eq!(row.split(',').count(), 3);
    }

    #[test]
    fn csv_cell_round_trips_through_parse() {
        assert!(csv_cell(None).parse::<f64>().unwrap().is_nan());
        assert_eq!(csv_cell(Some(1.5)).parse::<f64>().unwrap(), 1.5);
    }
}
