//! One-shot experiment runs shared by the table/figure binaries.
//!
//! The table printers fan their per-point simulations out through
//! [`crate::runner`]: one job per `(probe rate, replication)` pair, rows
//! aggregated in submission order so the printed table is bit-identical
//! at any `--threads` value. With `--reps > 1`, cells report
//! mean ± stddev across replications.

use crate::runner::{self, MeanSd};
use crate::scenarios::{self, Scenario, PROBE_FLOW, ZING_FLOW};
use badabing_core::config::BadabingConfig;
use badabing_metrics::Registry;
use badabing_probe::badabing::{BadabingAnalysis, BadabingHarness, BadabingProber};
use badabing_probe::zing::{attach_zing, zing_report, ZingConfig, ZingReport};
use badabing_sim::monitor::GroundTruth;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use std::sync::Arc;

/// Result of one BADABING run against a traffic scenario.
pub struct BadabingRun {
    /// Ground truth over the measurement horizon.
    pub truth: GroundTruth,
    /// The tool's analysis.
    pub analysis: BadabingAnalysis,
    /// Probe load actually offered, bits/second.
    pub load_bps: f64,
    /// The dumbbell (for further inspection).
    pub db: Dumbbell,
    /// The harness (for re-analysis with different detector parameters).
    pub harness: BadabingHarness,
}

/// Run BADABING with configuration `cfg` for `n_slots` against
/// `scenario`. Deterministic in `seed`.
pub fn run_badabing(
    scenario: Scenario,
    cfg: BadabingConfig,
    n_slots: u64,
    seed: u64,
) -> BadabingRun {
    run_badabing_instrumented(scenario, cfg, n_slots, seed, None)
}

/// [`run_badabing`] with an optional metrics registry attached to the
/// simulation engine. Counters accumulate, so parallel replications may
/// share one registry; instrumentation never changes the simulated run.
pub fn run_badabing_instrumented(
    scenario: Scenario,
    cfg: BadabingConfig,
    n_slots: u64,
    seed: u64,
    metrics: Option<&Arc<Registry>>,
) -> BadabingRun {
    let mut db = Dumbbell::standard();
    if let Some(reg) = metrics {
        db.sim.attach_metrics(reg.clone());
    }
    scenarios::attach(&mut db, scenario, seed);
    let harness = BadabingHarness::attach(&mut db, cfg, n_slots, PROBE_FLOW, seeded(seed, "probe"));
    let horizon = harness.horizon_secs();
    db.run_for(horizon + 1.0);
    let truth = db.ground_truth(horizon);
    let analysis = harness.analyze(&db.sim);
    let sent = db.sim.node::<BadabingProber>(harness.prober).sent();
    let packets: u64 = sent.iter().map(|s| u64::from(s.packets)).sum();
    let load_bps = packets as f64 * f64::from(cfg.packet_bytes) * 8.0 / horizon;
    BadabingRun {
        truth,
        analysis,
        load_bps,
        db,
        harness,
    }
}

/// Result of one ZING run (one simulation, one or more ZING instances).
pub struct ZingRun {
    /// Ground truth over the horizon.
    pub truth: GroundTruth,
    /// One report per attached ZING instance, in `configs` order.
    pub reports: Vec<ZingReport>,
    /// Simulator events dispatched (runner instrumentation).
    pub events: u64,
}

/// Run ZING (optionally two instances at different rates share one run —
/// their combined load is well under 0.05% of the bottleneck).
pub fn run_zing(scenario: Scenario, configs: &[ZingConfig], secs: f64, seed: u64) -> ZingRun {
    run_zing_instrumented(scenario, configs, secs, seed, None)
}

/// [`run_zing`] with an optional metrics registry attached to the
/// simulation engine (see [`run_badabing_instrumented`]).
pub fn run_zing_instrumented(
    scenario: Scenario,
    configs: &[ZingConfig],
    secs: f64,
    seed: u64,
    metrics: Option<&Arc<Registry>>,
) -> ZingRun {
    let mut db = Dumbbell::standard();
    if let Some(reg) = metrics {
        db.sim.attach_metrics(reg.clone());
    }
    scenarios::attach(&mut db, scenario, seed);
    let mut ids = Vec::new();
    for (i, &zcfg) in configs.iter().enumerate() {
        let flow = badabing_sim::packet::FlowId(ZING_FLOW.0 + i as u32);
        ids.push(attach_zing(
            &mut db,
            zcfg,
            flow,
            seeded(seed, &format!("zing{i}")),
        ));
    }
    db.run_for(secs + 1.0);
    let truth = db.ground_truth(secs);
    let reports = ids
        .into_iter()
        .map(|(p, r)| zing_report(&db.sim, p, r))
        .collect();
    ZingRun {
        truth,
        reports,
        events: db.sim.dispatched(),
    }
}

/// Print a ZING-vs-truth table (the Tables 1–3 shape) and mirror it to
/// CSV. Replications run in parallel through the runner; with
/// `--reps > 1` every cell becomes mean ± stddev across replications.
pub fn print_zing_table(
    scenario: Scenario,
    opts: &crate::RunOpts,
    paper_secs: f64,
    quick_secs: f64,
    name: &str,
    title: &str,
) {
    use badabing_probe::report::ToolReport;
    let secs = opts.duration(paper_secs, quick_secs);

    // One job per replication; each runs both ZING instances against a
    // fresh simulation and reduces it to the three table rows.
    struct ZingPoint {
        /// `[row][field]`: rows are (truth, 10 Hz, 20 Hz); fields are
        /// (frequency, duration mean, duration stddev).
        rows: [[Option<f64>; 3]; 3],
        sent: [f64; 2],
        lost: [f64; 2],
    }
    let metrics = Arc::new(Registry::new(name));
    let res = runner::replicate(opts.effective_threads(), opts.seed, opts.reps, |seed| {
        let run = run_zing_instrumented(
            scenario,
            &[ZingConfig::paper_10hz(), ZingConfig::paper_20hz()],
            secs,
            seed,
            Some(&metrics),
        );
        let reports = [
            ToolReport::from_truth("true values", &run.truth),
            ToolReport::from_zing("zing (10Hz, 256B)", &run.reports[0]),
            ToolReport::from_zing("zing (20Hz, 64B)", &run.reports[1]),
        ];
        let rows = reports.map(|r| [r.frequency, r.duration_mean_secs, r.duration_std_secs]);
        let point = ZingPoint {
            rows,
            sent: [run.reports[0].sent as f64, run.reports[1].sent as f64],
            lost: [run.reports[0].lost as f64, run.reports[1].lost as f64],
        };
        (point, run.events)
    });
    let stat_line = res.stat_line();
    let metrics_line = res.write_metrics(&metrics, name);
    let points = res.into_values();

    let labels = ["true values", "zing (10Hz, 256B)", "zing (20Hz, 64B)"];
    let width = if opts.reps > 1 { 17 } else { 10 };
    let mut w = crate::table::TableWriter::new(&opts.out_path(name));
    w.heading(&format!(
        "{title} ({secs:.0}s, {}{})",
        scenario.label(),
        if opts.reps > 1 {
            format!(", {} reps", opts.reps)
        } else {
            String::new()
        }
    ));
    w.row(&format!(
        "{:<24} {:>width$} {:>width$} {:>width$}",
        "source", "frequency", "dur mean", "dur std"
    ));
    if opts.reps > 1 {
        w.csv("source,frequency,frequency_sd,duration_mean_secs,duration_mean_secs_sd,duration_std_secs,duration_std_secs_sd,reps");
    } else {
        w.csv("source,frequency,duration_mean_secs,duration_std_secs");
    }
    for (row, label) in labels.iter().enumerate() {
        let fields: Vec<Option<MeanSd>> = (0..3)
            .map(|f| runner::aggregate(points.iter().map(|pt| pt.rows[row][f])))
            .collect();
        let cell = |m: &Option<MeanSd>| match m {
            Some(m) => m.cell(width, 4),
            None => format!("{:>width$}", "-"),
        };
        let csv_field = |m: &Option<MeanSd>| match m {
            Some(m) => m.csv_mean(),
            None => "nan".to_string(),
        };
        w.row(&format!(
            "{label:<24} {} {} {}",
            cell(&fields[0]),
            cell(&fields[1]),
            cell(&fields[2]),
        ));
        if opts.reps > 1 {
            let csv_sd = |m: &Option<MeanSd>| match m {
                Some(m) => m.csv_sd(),
                None => "nan".to_string(),
            };
            w.csv(&format!(
                "{label},{},{},{},{},{},{},{}",
                csv_field(&fields[0]),
                csv_sd(&fields[0]),
                csv_field(&fields[1]),
                csv_sd(&fields[1]),
                csv_field(&fields[2]),
                csv_sd(&fields[2]),
                opts.reps,
            ));
        } else {
            w.csv(&format!(
                "{label},{},{},{}",
                csv_field(&fields[0]),
                csv_field(&fields[1]),
                csv_field(&fields[2]),
            ));
        }
    }
    let sent0 = runner::aggregate_all(points.iter().map(|pt| pt.sent[0]));
    let sent1 = runner::aggregate_all(points.iter().map(|pt| pt.sent[1]));
    let lost0 = runner::aggregate_all(points.iter().map(|pt| pt.lost[0]));
    let lost1 = runner::aggregate_all(points.iter().map(|pt| pt.lost[1]));
    w.row(&format!(
        "(zing sent {:.0} and {:.0} probes; lost {:.0} and {:.0})",
        sent0.mean, sent1.mean, lost0.mean, lost1.mean
    ));
    println!("{stat_line}");
    println!("{metrics_line}");
    w.finish();
}

/// The probe-rate sweep used by Tables 4, 5 and 6.
pub const P_SWEEP: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// Everything one BADABING run contributes to a table row, reduced to
/// plain numbers so jobs can cross threads.
struct BadabingPoint {
    f_true: f64,
    d_true: f64,
    f_est: Option<f64>,
    d_est: Option<f64>,
    d_ci: Option<f64>,
    valid: bool,
    experiments: u64,
}

/// Print a BADABING p-sweep table (the Tables 4–6 shape) and mirror it
/// to CSV. Each `(probe rate, replication)` pair is one runner job — a
/// fresh simulation at that probe rate with the paper's recommended α
/// and τ — and rows aggregate in `P_SWEEP` order regardless of which
/// thread finishes first. With `--reps > 1`, cells are mean ± stddev.
pub fn print_badabing_table(scenario: Scenario, opts: &crate::RunOpts, name: &str, title: &str) {
    let secs = opts.duration(900.0, 120.0);
    let reps = opts.reps.max(1);
    let jobs: Vec<(f64, u64)> = P_SWEEP
        .iter()
        .flat_map(|&p| (0..reps).map(move |r| (p, runner::rep_seed(opts.seed, r))))
        .collect();
    let metrics = Arc::new(Registry::new(name));
    let res = runner::run_jobs(opts.effective_threads(), &jobs, |&(p, seed)| {
        let cfg = BadabingConfig::paper_default(p);
        let n_slots = slots_for(secs, cfg.slot_secs);
        let run = run_badabing_instrumented(scenario, cfg, n_slots, seed, Some(&metrics));
        // §8's data-driven variability estimate for the duration.
        let d_ci =
            badabing_core::uncertainty::duration_interval_slots(&run.analysis.estimates, 1.96)
                .map(|i| i.half_width() * cfg.slot_secs);
        let point = BadabingPoint {
            f_true: run.truth.frequency(),
            d_true: run.truth.mean_duration_secs(),
            f_est: run.analysis.frequency(),
            d_est: run.analysis.duration_secs(),
            d_ci,
            valid: run.analysis.validation.passes(0.5),
            experiments: run.analysis.log.len() as u64,
        };
        let events = run.db.sim.dispatched();
        (point, events)
    });
    let stat_line = res.stat_line();
    let metrics_line = res.write_metrics(&metrics, name);
    let points = res.into_values();

    let width = if reps > 1 { 17 } else { 11 };
    let mut w = crate::table::TableWriter::new(&opts.out_path(name));
    w.heading(&format!(
        "{title} ({secs:.0}s, {}{})",
        scenario.label(),
        if reps > 1 {
            format!(", {reps} reps")
        } else {
            String::new()
        }
    ));
    w.row(&format!(
        "{:>4} {:>width$} {:>width$} {:>width$} {:>width$} {:>9}  {}",
        "p", "true freq", "est freq", "true dur", "est dur", "±95% dur", "validation"
    ));
    if reps > 1 {
        w.csv("p,true_frequency,true_frequency_sd,est_frequency,est_frequency_sd,true_duration_secs,true_duration_secs_sd,est_duration_secs,est_duration_secs_sd,duration_ci_halfwidth_secs,validation_pass_rate,experiments_mean,reps");
    } else {
        w.csv("p,true_frequency,est_frequency,true_duration_secs,est_duration_secs,duration_ci_halfwidth_secs,validation_passes,experiments");
    }
    for (i, &p) in P_SWEEP.iter().enumerate() {
        let group = &points[i * reps as usize..(i + 1) * reps as usize];
        let f_true = runner::aggregate_all(group.iter().map(|pt| pt.f_true));
        let d_true = runner::aggregate_all(group.iter().map(|pt| pt.d_true));
        let f_est = runner::aggregate(group.iter().map(|pt| pt.f_est));
        let d_est = runner::aggregate(group.iter().map(|pt| pt.d_est));
        let d_ci = runner::aggregate(group.iter().map(|pt| pt.d_ci));
        let passes = group.iter().filter(|pt| pt.valid).count();
        let experiments = runner::aggregate_all(group.iter().map(|pt| pt.experiments as f64));
        let opt_cell = |m: &Option<MeanSd>, precision: usize| match m {
            Some(m) => m.cell(width, precision),
            None => format!("{:>width$}", "-"),
        };
        let validation = if reps > 1 {
            if passes == group.len() {
                format!("ok {passes}/{}", group.len())
            } else {
                format!("FLAGGED {}/{}", group.len() - passes, group.len())
            }
        } else if passes == 1 {
            "ok".to_string()
        } else {
            "FLAGGED".to_string()
        };
        w.row(&format!(
            "{:>4.1} {} {} {} {} {}  {}",
            p,
            f_true.cell(width, 4),
            opt_cell(&f_est, 4),
            d_true.cell(width, 3),
            opt_cell(&d_est, 3),
            d_ci.as_ref()
                .map_or_else(|| format!("{:>9}", "-"), |c| format!("{:>9.3}", c.mean)),
            validation,
        ));
        let csv_opt = |m: &Option<MeanSd>| match m {
            Some(m) => m.csv_mean(),
            None => "nan".to_string(),
        };
        if reps > 1 {
            let csv_opt_sd = |m: &Option<MeanSd>| match m {
                Some(m) => m.csv_sd(),
                None => "nan".to_string(),
            };
            w.csv(&format!(
                "{p},{},{},{},{},{},{},{},{},{},{},{},{reps}",
                f_true.csv_mean(),
                f_true.csv_sd(),
                csv_opt(&f_est),
                csv_opt_sd(&f_est),
                d_true.csv_mean(),
                d_true.csv_sd(),
                csv_opt(&d_est),
                csv_opt_sd(&d_est),
                csv_opt(&d_ci),
                passes as f64 / group.len() as f64,
                experiments.csv_mean(),
            ));
        } else {
            w.csv(&format!(
                "{p},{},{},{},{},{},{},{}",
                f_true.csv_mean(),
                csv_opt(&f_est),
                d_true.csv_mean(),
                csv_opt(&d_est),
                csv_opt(&d_ci),
                passes == 1,
                group[0].experiments,
            ));
        }
    }
    println!("{stat_line}");
    println!("{metrics_line}");
    w.finish();
}

/// Convert a duration in seconds to the slot count used throughout
/// (5 ms slots unless the config overrides it).
pub fn slots_for(secs: f64, slot_secs: f64) -> u64 {
    (secs / slot_secs).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_round() {
        assert_eq!(slots_for(900.0, 0.005), 180_000);
        assert_eq!(slots_for(0.012, 0.005), 2);
    }

    #[test]
    fn badabing_run_produces_consistent_pieces() {
        let cfg = BadabingConfig::paper_default(0.5);
        // 60 s: episode gaps are Exp(mean 10 s), so a 30 s run misses all
        // episodes with probability e⁻³ ≈ 5% — long enough to make that
        // corner vanishingly unlikely for any seed stream.
        let run = run_badabing(Scenario::CbrUniform, cfg, 12_000, 7);
        assert!(
            run.truth.frequency() > 0.0,
            "60 s of CBR should include episodes"
        );
        assert!(run.analysis.log.len() > 4_000);
        // Offered load ≈ p/Δ × 2 probes × 3 pkts × 600 B × 8.
        let expect = cfg.offered_load_bps();
        assert!(
            (run.load_bps - expect).abs() / expect < 0.05,
            "load {}",
            run.load_bps
        );
    }

    #[test]
    fn zing_run_reports_both_instances() {
        let run = run_zing(
            Scenario::CbrUniform,
            &[ZingConfig::paper_10hz(), ZingConfig::paper_20hz()],
            60.0,
            7,
        );
        assert!(
            run.truth.frequency() > 0.0,
            "60 s of CBR should include episodes"
        );
        assert_eq!(run.reports.len(), 2);
        assert!(run.reports[0].sent > 400);
        assert!(
            run.reports[1].sent > run.reports[0].sent,
            "20 Hz sends more than 10 Hz"
        );
        assert!(
            run.events > 0,
            "instrumentation should count dispatched events"
        );
    }
}
