//! One-shot experiment runs shared by the table/figure binaries.

use crate::scenarios::{self, Scenario, PROBE_FLOW, ZING_FLOW};
use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::{BadabingAnalysis, BadabingHarness, BadabingProber};
use badabing_probe::zing::{attach_zing, zing_report, ZingConfig, ZingReport};
use badabing_sim::monitor::GroundTruth;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;

/// Result of one BADABING run against a traffic scenario.
pub struct BadabingRun {
    /// Ground truth over the measurement horizon.
    pub truth: GroundTruth,
    /// The tool's analysis.
    pub analysis: BadabingAnalysis,
    /// Probe load actually offered, bits/second.
    pub load_bps: f64,
    /// The dumbbell (for further inspection).
    pub db: Dumbbell,
    /// The harness (for re-analysis with different detector parameters).
    pub harness: BadabingHarness,
}

/// Run BADABING with configuration `cfg` for `n_slots` against
/// `scenario`. Deterministic in `seed`.
pub fn run_badabing(scenario: Scenario, cfg: BadabingConfig, n_slots: u64, seed: u64) -> BadabingRun {
    let mut db = Dumbbell::standard();
    scenarios::attach(&mut db, scenario, seed);
    let harness =
        BadabingHarness::attach(&mut db, cfg, n_slots, PROBE_FLOW, seeded(seed, "probe"));
    let horizon = harness.horizon_secs();
    db.run_for(horizon + 1.0);
    let truth = db.ground_truth(horizon);
    let analysis = harness.analyze(&db.sim);
    let sent = db.sim.node::<BadabingProber>(harness.prober).sent();
    let packets: u64 = sent.iter().map(|s| u64::from(s.packets)).sum();
    let load_bps = packets as f64 * f64::from(cfg.packet_bytes) * 8.0 / horizon;
    BadabingRun { truth, analysis, load_bps, db, harness }
}

/// Result of one ZING run.
pub struct ZingRun {
    /// Ground truth over the horizon.
    pub truth: GroundTruth,
    /// ZING's measurements.
    pub report: ZingReport,
}

/// Run ZING (optionally two instances at different rates share one run —
/// their combined load is well under 0.05% of the bottleneck).
pub fn run_zing(scenario: Scenario, configs: &[ZingConfig], secs: f64, seed: u64) -> (GroundTruth, Vec<ZingReport>) {
    let mut db = Dumbbell::standard();
    scenarios::attach(&mut db, scenario, seed);
    let mut ids = Vec::new();
    for (i, &zcfg) in configs.iter().enumerate() {
        let flow = badabing_sim::packet::FlowId(ZING_FLOW.0 + i as u32);
        ids.push(attach_zing(&mut db, zcfg, flow, seeded(seed, &format!("zing{i}"))));
    }
    db.run_for(secs + 1.0);
    let truth = db.ground_truth(secs);
    let reports =
        ids.into_iter().map(|(p, r)| zing_report(&db.sim, p, r)).collect();
    (truth, reports)
}

/// Print a ZING-vs-truth table (the Tables 1–3 shape) and mirror it to
/// CSV.
pub fn print_zing_table(
    scenario: Scenario,
    opts: &crate::RunOpts,
    paper_secs: f64,
    quick_secs: f64,
    name: &str,
    title: &str,
) {
    use badabing_probe::report::ToolReport;
    let secs = opts.duration(paper_secs, quick_secs);
    let (truth, reports) = run_zing(
        scenario,
        &[ZingConfig::paper_10hz(), ZingConfig::paper_20hz()],
        secs,
        opts.seed,
    );
    let mut w = crate::table::TableWriter::new(&opts.out_path(name));
    w.heading(&format!("{title} ({secs:.0}s, {})", scenario.label()));
    w.row(&ToolReport::header());
    w.csv("source,frequency,duration_mean_secs,duration_std_secs");
    let rows = [
        ToolReport::from_truth("true values", &truth),
        ToolReport::from_zing("zing (10Hz, 256B)", &reports[0]),
        ToolReport::from_zing("zing (20Hz, 64B)", &reports[1]),
    ];
    for r in rows {
        w.row_csv(&r.fmt_row(), &r.csv_row());
    }
    w.row(&format!(
        "(zing sent {} and {} probes; lost {} and {})",
        reports[0].sent, reports[1].sent, reports[0].lost, reports[1].lost
    ));
    w.finish();
}

/// The probe-rate sweep used by Tables 4, 5 and 6.
pub const P_SWEEP: [f64; 5] = [0.1, 0.3, 0.5, 0.7, 0.9];

/// Print a BADABING p-sweep table (the Tables 4–6 shape) and mirror it
/// to CSV. Each row runs a fresh simulation at that probe rate with the
/// paper's recommended α and τ.
pub fn print_badabing_table(
    scenario: Scenario,
    opts: &crate::RunOpts,
    name: &str,
    title: &str,
) {
    let secs = opts.duration(900.0, 120.0);
    let mut w = crate::table::TableWriter::new(&opts.out_path(name));
    w.heading(&format!("{title} ({secs:.0}s, {})", scenario.label()));
    w.row(&format!(
        "{:>4} {:>11} {:>11} {:>11} {:>11} {:>9}  {}",
        "p", "true freq", "est freq", "true dur", "est dur", "±95% dur", "validation"
    ));
    w.csv("p,true_frequency,est_frequency,true_duration_secs,est_duration_secs,duration_ci_halfwidth_secs,validation_passes,experiments");
    for p in P_SWEEP {
        let cfg = BadabingConfig::paper_default(p);
        let n_slots = slots_for(secs, cfg.slot_secs);
        let run = run_badabing(scenario, cfg, n_slots, opts.seed);
        let f_true = run.truth.frequency();
        let d_true = run.truth.mean_duration_secs();
        let f_est = run.analysis.frequency();
        let d_est = run.analysis.duration_secs();
        // §8's data-driven variability estimate for the duration.
        let d_ci = badabing_core::uncertainty::duration_interval_slots(&run.analysis.estimates, 1.96)
            .map(|i| i.half_width() * cfg.slot_secs);
        let valid = run.analysis.validation.passes(0.5);
        w.row(&format!(
            "{:>4.1} {:>11.4} {} {:>11.3} {} {:>9}  {}",
            p,
            f_true,
            crate::table::cell(f_est, 11, 4),
            d_true,
            crate::table::cell(d_est, 11, 3),
            d_ci.map_or_else(|| format!("{:>9}", "-"), |c| format!("{c:>9.3}")),
            if valid { "ok" } else { "FLAGGED" },
        ));
        w.csv(&format!(
            "{p},{f_true},{},{d_true},{},{},{valid},{}",
            f_est.map_or(String::new(), |v| v.to_string()),
            d_est.map_or(String::new(), |v| v.to_string()),
            d_ci.map_or(String::new(), |v| v.to_string()),
            run.analysis.log.len(),
        ));
    }
    w.finish();
}

/// Convert a duration in seconds to the slot count used throughout
/// (5 ms slots unless the config overrides it).
pub fn slots_for(secs: f64, slot_secs: f64) -> u64 {
    (secs / slot_secs).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slots_round() {
        assert_eq!(slots_for(900.0, 0.005), 180_000);
        assert_eq!(slots_for(0.012, 0.005), 2);
    }

    #[test]
    fn badabing_run_produces_consistent_pieces() {
        let cfg = BadabingConfig::paper_default(0.5);
        let run = run_badabing(Scenario::CbrUniform, cfg, 6_000, 7);
        assert!(run.truth.frequency() > 0.0, "30 s of CBR should include episodes");
        assert!(run.analysis.log.len() > 2_000);
        // Offered load ≈ p/Δ × 2 probes × 3 pkts × 600 B × 8.
        let expect = cfg.offered_load_bps();
        assert!((run.load_bps - expect).abs() / expect < 0.05, "load {}", run.load_bps);
    }

    #[test]
    fn zing_run_reports_both_instances() {
        let (truth, reports) = run_zing(
            Scenario::CbrUniform,
            &[ZingConfig::paper_10hz(), ZingConfig::paper_20hz()],
            30.0,
            7,
        );
        assert!(truth.frequency() > 0.0);
        assert_eq!(reports.len(), 2);
        assert!(reports[0].sent > 200);
        assert!(reports[1].sent > reports[0].sent, "20 Hz sends more than 10 Hz");
    }
}
