//! Queue-length figure rendering (Figures 4, 5, 6, 8).
//!
//! The paper's queue figures plot buffer occupancy (as drain time in
//! seconds) over a 10-second window. We print the per-slot maxima over
//! the window as CSV and a coarse ASCII sparkline so the shape is visible
//! straight from the terminal.

use crate::table::TableWriter;
use badabing_sim::monitor::GroundTruth;

/// Dump the queue series over `[t0, t1)` seconds: CSV rows `t,qdelay` and
/// an ASCII rendering, plus the run's episode summary.
pub fn dump_queue_series(gt: &GroundTruth, t0: f64, t1: f64, w: &mut TableWriter) {
    w.csv("t_secs,qdelay_secs");
    let slot = gt.qdelay.width_secs();
    let first = (t0 / slot) as usize;
    let last = ((t1 / slot) as usize).min(gt.qdelay.len());
    let values = &gt.qdelay.values()[first.min(gt.qdelay.len())..last];
    for (i, v) in values.iter().enumerate() {
        w.csv(&format!("{:.3},{v:.6}", t0 + i as f64 * slot));
    }
    w.row(&sparkline(values, gt.config.queue_capacity_secs, 72));
    w.row(&format!(
        "window [{t0}, {t1}) s; y-range 0..{:.3} s of queue",
        gt.config.queue_capacity_secs
    ));
}

/// Print the run's loss-episode summary.
pub fn episode_summary(gt: &GroundTruth, w: &TableWriter) {
    w.row(&format!(
        "episodes: {}  frequency: {:.4}  mean duration: {:.3} s (σ {:.3})  router loss rate: {:.5}",
        gt.episodes.len(),
        gt.frequency(),
        gt.mean_duration_secs(),
        gt.std_duration_secs(),
        gt.router_loss_rate,
    ));
}

/// Render values as a one-line ASCII sparkline with `cols` columns,
/// scaling to `max` at the top glyph.
pub fn sparkline(values: &[f64], max: f64, cols: usize) -> String {
    const GLYPHS: [char; 9] = [' ', '▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];
    if values.is_empty() || cols == 0 {
        return String::new();
    }
    let chunk = values.len().div_ceil(cols);
    values
        .chunks(chunk)
        .map(|c| {
            let v = c.iter().copied().fold(0.0f64, f64::max);
            let idx = ((v / max).clamp(0.0, 1.0) * (GLYPHS.len() - 1) as f64).round() as usize;
            GLYPHS[idx]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sparkline_scales() {
        let s = sparkline(&[0.0, 0.05, 0.1], 0.1, 3);
        assert_eq!(s.chars().count(), 3);
        assert!(s.starts_with(' '));
        assert!(s.ends_with('█'));
    }

    #[test]
    fn sparkline_empty_is_empty() {
        assert_eq!(sparkline(&[], 1.0, 10), "");
        assert_eq!(sparkline(&[1.0], 1.0, 0), "");
    }

    #[test]
    fn sparkline_chunks_take_max() {
        let s = sparkline(&[0.0, 1.0, 0.0, 0.0], 1.0, 2);
        assert_eq!(s.chars().next(), Some('█'));
    }
}
