//! The three cross-traffic scenarios of §4 / §6, wired onto the standard
//! dumbbell.

use badabing_sim::packet::FlowId;
use badabing_sim::time::SimTime;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_tcp::conn::TcpConfig;
use badabing_tcp::node::attach_flow;
use badabing_traffic::cbr::{attach_cbr, CbrEpisodeConfig, EpisodeLengths};
use badabing_traffic::web::{attach_web, WebConfig};

/// Flow-id blocks: cross traffic uses low ids, web sessions a high block,
/// probes the top block (so tooling can tell them apart at a glance).
pub const PROBE_FLOW: FlowId = FlowId(0xFFFF_0000);
/// Flow id used by the ZING prober when both tools run side by side.
pub const ZING_FLOW: FlowId = FlowId(0xFFFF_0001);
/// First flow id of the web-session block.
pub const WEB_FLOW_BASE: u32 = 1 << 16;

/// Which cross-traffic scenario to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scenario {
    /// 40 infinite TCP sources (Figure 4, Table 1).
    InfiniteTcp,
    /// CBR with constant 68 ms loss episodes at exp(10 s) spacing
    /// (Figure 5, Tables 2, 4, 7, 8).
    CbrUniform,
    /// CBR with 50/100/150 ms episodes (Table 5).
    CbrMulti,
    /// Harpoon-like web traffic (Figure 6, Tables 3, 6, 8).
    Web,
}

impl Scenario {
    /// Human-readable label used in table headers and CSV.
    pub fn label(self) -> &'static str {
        match self {
            Scenario::InfiniteTcp => "infinite-tcp",
            Scenario::CbrUniform => "cbr-uniform",
            Scenario::CbrMulti => "cbr-multi",
            Scenario::Web => "web-like",
        }
    }
}

/// Build the standard dumbbell and attach the scenario's sources.
pub fn build(scenario: Scenario, seed: u64) -> Dumbbell {
    build_with(scenario, seed, false)
}

/// [`build`], optionally opting the bottleneck monitor into full-trace
/// retention (`trace = true`; streaming otherwise — see the monitor-modes
/// notes in DESIGN.md).
pub fn build_with(scenario: Scenario, seed: u64, trace: bool) -> Dumbbell {
    let mut db = Dumbbell::standard();
    if trace {
        db.enable_trace();
    }
    attach(&mut db, scenario, seed);
    db
}

/// Attach a scenario's traffic to an existing dumbbell.
pub fn attach(db: &mut Dumbbell, scenario: Scenario, seed: u64) {
    match scenario {
        Scenario::InfiniteTcp => {
            // 40 sources, rwnd 256 full-size segments (§4.2). Starts are
            // nearly simultaneous (1 ms apart): homogeneous flows through
            // one drop-tail FIFO then synchronize their congestion
            // avoidance, reproducing the deep sawtooth of Figure 4.
            // (Staggering starts across seconds desynchronizes the flows
            // into a standing near-full queue — the many-flows equilibrium
            // — which is not the regime the paper's testbed exhibited.)
            // init_ssthresh of 64 segments lets the aggregate approach
            // capacity in congestion avoidance instead of a synchronized
            // slow-start overshoot; the overshoot otherwise causes mass
            // timeouts and locks the system into a collapse/overshoot
            // cycle with hundreds of drops per episode, where the testbed
            // showed ~one loss per flow per episode.
            for f in 0..40u32 {
                let cfg = TcpConfig {
                    init_ssthresh: 64.0,
                    ..TcpConfig::default()
                };
                let start = SimTime::from_secs_f64(f as f64 * 0.001);
                attach_flow(db, FlowId(f + 1), cfg, start);
            }
        }
        Scenario::CbrUniform => {
            let cfg = CbrEpisodeConfig::paper_default();
            attach_cbr(db, FlowId(1), cfg, seeded(seed, "cbr-uniform"));
        }
        Scenario::CbrMulti => {
            let cfg = CbrEpisodeConfig {
                lengths: EpisodeLengths::Choice(vec![0.050, 0.100, 0.150]),
                ..CbrEpisodeConfig::paper_default()
            };
            attach_cbr(db, FlowId(1), cfg, seeded(seed, "cbr-multi"));
        }
        Scenario::Web => {
            let cfg = WebConfig::paper_default();
            attach_web(db, cfg, WEB_FLOW_BASE, seeded(seed, "web"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn each_scenario_generates_loss() {
        for scenario in [
            Scenario::InfiniteTcp,
            Scenario::CbrUniform,
            Scenario::CbrMulti,
            Scenario::Web,
        ] {
            let mut db = build(scenario, 99);
            db.run_for(40.0);
            let drops = db.monitor().borrow().drops();
            assert!(drops > 0, "{}: no drops in 40s", scenario.label());
        }
    }

    // Compile-time layout checks: the flow-id blocks must not collide.
    const _: () = {
        assert!(PROBE_FLOW.0 > WEB_FLOW_BASE);
        assert!(ZING_FLOW.0 > WEB_FLOW_BASE);
        assert!(WEB_FLOW_BASE > 40);
        assert!(PROBE_FLOW.0 != ZING_FLOW.0);
    };
}
