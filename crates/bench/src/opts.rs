//! Minimal CLI parsing shared by the experiment binaries.

use std::path::PathBuf;

/// Common experiment options.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// Run length override in (virtual) seconds; `None` uses the paper's
    /// duration for that experiment.
    pub seconds: Option<f64>,
    /// Shrink the run to a smoke test (each binary defines its own quick
    /// duration).
    pub quick: bool,
    /// Master seed for every stochastic component.
    pub seed: u64,
    /// Where to write the CSV (default `results/<name>.csv`).
    pub out: Option<PathBuf>,
    /// Worker threads for the parallel runner; `None` uses every
    /// available core. Output is identical at any thread count.
    pub threads: Option<usize>,
    /// Replications per experiment point (tables report mean ± stddev
    /// when > 1). Replication 0 reuses the master seed, so `--reps 1`
    /// reproduces the unreplicated output exactly.
    pub reps: u32,
}

impl Default for RunOpts {
    fn default() -> Self {
        Self {
            seconds: None,
            quick: false,
            seed: 20050821,
            out: None,
            threads: None,
            reps: 1,
        }
    }
}

impl RunOpts {
    /// Parse from `std::env::args`. Unknown flags abort with usage help.
    pub fn from_args() -> Self {
        let mut opts = Self::default();
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--quick" => opts.quick = true,
                "--seconds" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--seconds needs a value"));
                    opts.seconds = Some(
                        v.parse()
                            .unwrap_or_else(|_| usage("--seconds needs a number")),
                    );
                }
                "--seed" => {
                    let v = args.next().unwrap_or_else(|| usage("--seed needs a value"));
                    opts.seed = v
                        .parse()
                        .unwrap_or_else(|_| usage("--seed needs an integer"));
                }
                "--out" => {
                    let v = args.next().unwrap_or_else(|| usage("--out needs a path"));
                    opts.out = Some(PathBuf::from(v));
                }
                "--threads" => {
                    let v = args
                        .next()
                        .unwrap_or_else(|| usage("--threads needs a value"));
                    let n: usize = v
                        .parse()
                        .unwrap_or_else(|_| usage("--threads needs an integer"));
                    if n == 0 {
                        usage("--threads must be at least 1");
                    }
                    opts.threads = Some(n);
                }
                "--reps" => {
                    let v = args.next().unwrap_or_else(|| usage("--reps needs a value"));
                    let n: u32 = v
                        .parse()
                        .unwrap_or_else(|_| usage("--reps needs an integer"));
                    if n == 0 {
                        usage("--reps must be at least 1");
                    }
                    opts.reps = n;
                }
                "--help" | "-h" => usage(""),
                other => usage(&format!("unknown flag {other}")),
            }
        }
        opts
    }

    /// Effective duration: explicit `--seconds` wins; otherwise `quick`
    /// picks the smoke duration, else the paper duration.
    pub fn duration(&self, paper_secs: f64, quick_secs: f64) -> f64 {
        match self.seconds {
            Some(s) => s,
            None if self.quick => quick_secs,
            None => paper_secs,
        }
    }

    /// CSV output path for an experiment named `name`.
    pub fn out_path(&self, name: &str) -> PathBuf {
        self.out
            .clone()
            .unwrap_or_else(|| PathBuf::from(format!("results/{name}.csv")))
    }

    /// Metrics snapshot path for an experiment named `name`. Always under
    /// `results/metrics/` — that is the directory `summarize` folds into
    /// `results/SUMMARY.md`, regardless of any `--out` CSV override.
    pub fn metrics_path(name: &str) -> PathBuf {
        PathBuf::from(format!("results/metrics/{name}.json"))
    }

    /// Worker threads for the parallel runner: `--threads` if given, else
    /// every available core.
    pub fn effective_threads(&self) -> usize {
        self.threads.unwrap_or_else(|| {
            std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        })
    }
}

fn usage(msg: &str) -> ! {
    if !msg.is_empty() {
        eprintln!("error: {msg}");
    }
    eprintln!(
        "usage: <experiment> [--quick] [--seconds S] [--seed N] [--out PATH] [--threads N] [--reps N]"
    );
    std::process::exit(if msg.is_empty() { 0 } else { 2 });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duration_precedence() {
        let mut o = RunOpts::default();
        assert_eq!(o.duration(900.0, 120.0), 900.0);
        o.quick = true;
        assert_eq!(o.duration(900.0, 120.0), 120.0);
        o.seconds = Some(42.0);
        assert_eq!(o.duration(900.0, 120.0), 42.0);
    }

    #[test]
    fn effective_threads_honors_override() {
        let o = RunOpts {
            threads: Some(3),
            ..RunOpts::default()
        };
        assert_eq!(o.effective_threads(), 3);
        assert!(RunOpts::default().effective_threads() >= 1);
        assert_eq!(RunOpts::default().reps, 1);
    }

    #[test]
    fn out_path_defaults_to_results_dir() {
        let o = RunOpts::default();
        assert_eq!(o.out_path("tab4"), PathBuf::from("results/tab4.csv"));
        let o2 = RunOpts {
            out: Some(PathBuf::from("/tmp/x.csv")),
            ..RunOpts::default()
        };
        assert_eq!(o2.out_path("tab4"), PathBuf::from("/tmp/x.csv"));
    }
}
