//! Experiment harness: shared scaffolding for regenerating every table
//! and figure in the paper.
//!
//! Each table/figure has a binary under `src/bin/` (see DESIGN.md's
//! experiment index). They share:
//!
//! * [`opts::RunOpts`] — common CLI flags (`--quick`, `--seconds`,
//!   `--seed`, `--out`, `--threads`, `--reps`);
//! * [`runner`] — the parallel replicate runner every binary fans its
//!   simulation jobs through;
//! * [`scenarios`] — the three cross-traffic scenarios of §4/§6 wired
//!   onto the standard dumbbell;
//! * [`table`] — fixed-width table printing plus CSV capture under
//!   `results/`.
//!
//! Conventions: every binary prints the paper's corresponding rows (true
//! values first), runs at the paper's durations by default, and accepts
//! `--quick` for a shorter smoke run. All runs are deterministic given
//! `--seed` — including at any `--threads` value (see [`runner`]'s
//! determinism contract).

pub mod figures;
pub mod opts;
pub mod runner;
pub mod runs;
pub mod scenarios;
pub mod table;

pub use opts::RunOpts;
