//! Streaming (online) estimation.
//!
//! [`crate::estimator::Estimates`] and [`crate::validate::Validation`]
//! reduce a finished log; long-running deployments (and the adaptive
//! runtime of [`crate::adaptive`]) instead fold outcomes in as they
//! arrive and query estimates at any time. [`StreamingEstimator`] keeps
//! the same counts incrementally and answers the same questions, plus the
//! run-time quantities a stopping rule needs: the current loss-event-rate
//! estimate `L̂` and the §7 predicted standard deviation of the duration
//! estimate.

use crate::estimator::Estimates;
use crate::outcome::Outcome;
use crate::validate::{duration_stddev_model, Validation};
use serde::{Deserialize, Serialize};

/// Incrementally maintained pattern counts and estimates.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct StreamingEstimator {
    estimates: Estimates,
    validation: Validation,
    /// Highest slot seen so far (+ probe span), for the effective `N`.
    max_slot_seen: u64,
    /// Per-slot experiment probability (for the §7 model).
    p: f64,
}

impl StreamingEstimator {
    /// New empty estimator for a process with per-slot probability `p`
    /// and the given slot width.
    pub fn new(p: f64, slot_secs: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0,1], got {p}");
        assert!(slot_secs > 0.0, "slot width must be positive");
        let estimates = Estimates {
            slot_secs,
            ..Default::default()
        };
        Self {
            estimates,
            validation: Validation::default(),
            max_slot_seen: 0,
            p,
        }
    }

    /// Fold in one outcome.
    ///
    /// Malformed outcomes (probe count outside {2, 3}) are counted in
    /// `estimates().outcomes_malformed` and otherwise ignored — in
    /// particular they do not advance the effective-`N` window. The
    /// probes-0 case used to underflow the span arithmetic below before
    /// the pattern match could even reject it.
    pub fn push(&mut self, o: &Outcome) {
        if o.probes != 2 && o.probes != 3 {
            self.estimates.push(o);
            return;
        }
        // k probes starting at slot s occupy slots s ..= s+k-1;
        // saturating so a hostile start slot near u64::MAX cannot wrap
        // the window to zero.
        let end_slot = o.start_slot.saturating_add(u64::from(o.probes) - 1);
        self.max_slot_seen = self.max_slot_seen.max(end_slot);

        // Estimator counters are the shared incremental fold; only the
        // finer-grained validation tallies stay local to this type.
        self.estimates.push(o);
        match o.probes {
            2 => match o.pattern() {
                0b00 => self.validation.n00 += 1,
                0b01 => self.validation.n01 += 1,
                0b10 => self.validation.n10 += 1,
                0b11 => self.validation.n11 += 1,
                _ => unreachable!("2-probe pattern out of range"),
            },
            3 => match o.pattern() {
                0b000 => self.validation.n000 += 1,
                0b001 => self.validation.n001 += 1,
                0b100 => self.validation.n100 += 1,
                0b011 => self.validation.n011 += 1,
                0b110 => self.validation.n110 += 1,
                0b010 => self.validation.n010 += 1,
                0b101 => self.validation.n101 += 1,
                0b111 => self.validation.n111 += 1,
                _ => unreachable!("3-probe pattern out of range"),
            },
            _ => unreachable!("rejected above"),
        }
    }

    /// Current estimates snapshot.
    pub fn estimates(&self) -> &Estimates {
        &self.estimates
    }

    /// Current validation tallies.
    pub fn validation(&self) -> &Validation {
        &self.validation
    }

    /// Outcomes folded in so far.
    pub fn len(&self) -> u64 {
        self.estimates.experiments
    }

    /// Whether nothing has been folded in.
    pub fn is_empty(&self) -> bool {
        self.estimates.experiments == 0
    }

    /// Effective run length so far, in slots (highest slot probed).
    pub fn effective_slots(&self) -> u64 {
        self.max_slot_seen
    }

    /// Estimated loss-event rate `L̂` per slot: episode *starts* are in
    /// one-to-one correspondence with `01` boundary observations, each of
    /// which is sampled with probability `p` per episode edge, so
    /// `L̂ = #01 / (p · N)`. Returns `None` before any boundary is seen.
    pub fn loss_event_rate(&self) -> Option<f64> {
        if self.estimates.n01 == 0 || self.max_slot_seen == 0 {
            return None;
        }
        Some(self.estimates.n01 as f64 / (self.p * self.max_slot_seen as f64))
    }

    /// §7's predicted `StdDev(D̂)` (in slots) at the current run length,
    /// using the measured `L̂`. `None` until a loss event rate exists.
    pub fn predicted_duration_stddev(&self) -> Option<f64> {
        let l = self.loss_event_rate()?;
        if self.max_slot_seen == 0 {
            return None;
        }
        Some(duration_stddev_model(self.p, self.max_slot_seen as f64, l))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::ExperimentLog;

    fn outcomes() -> Vec<Outcome> {
        vec![
            Outcome::basic(0, 10, false, false),
            Outcome::basic(1, 50, false, true),
            Outcome::basic(2, 90, true, false),
            Outcome::basic(3, 130, true, true),
            Outcome::extended(4, 200, false, true, true),
            Outcome::extended(5, 280, false, false, true),
            Outcome::extended(6, 360, false, true, false),
            Outcome::extended(7, 440, true, true, true),
            Outcome::extended(8, 520, true, false, false),
        ]
    }

    #[test]
    fn streaming_matches_batch() {
        let mut s = StreamingEstimator::new(0.3, 0.005);
        let mut log = ExperimentLog::new(1_000, 0.005);
        for o in outcomes() {
            s.push(&o);
            log.push(o);
        }
        let batch = Estimates::from_log(&log);
        let stream = s.estimates();
        assert_eq!(stream.experiments, batch.experiments);
        assert_eq!(stream.z_sum, batch.z_sum);
        assert_eq!(stream.r, batch.r);
        assert_eq!(stream.s, batch.s);
        assert_eq!(stream.u, batch.u);
        assert_eq!(stream.v, batch.v);
        assert_eq!(stream.n111, batch.n111);
        assert_eq!(
            stream.duration_slots_pooled(),
            batch.duration_slots_pooled()
        );
        assert_eq!(stream.frequency(), batch.frequency());
        assert_eq!(stream.duration_slots_basic(), batch.duration_slots_basic());

        let vbatch = Validation::from_log(&log);
        let vstream = s.validation();
        assert_eq!(vstream.n01, vbatch.n01);
        assert_eq!(vstream.n10, vbatch.n10);
        assert_eq!(vstream.n010, vbatch.n010);
        assert_eq!(vstream.violations(), vbatch.violations());
    }

    #[test]
    fn effective_slots_track_probe_span() {
        let mut s = StreamingEstimator::new(0.5, 0.005);
        assert!(s.is_empty());
        // A basic experiment at slot 100 probes slots 100 and 101; an
        // extended one at 500 probes 500, 501, 502.
        s.push(&Outcome::basic(0, 100, false, false));
        assert_eq!(s.effective_slots(), 101);
        s.push(&Outcome::extended(1, 500, false, false, false));
        assert_eq!(s.effective_slots(), 502);
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn loss_event_rate_from_boundaries() {
        let mut s = StreamingEstimator::new(0.5, 0.005);
        assert_eq!(s.loss_event_rate(), None);
        // Two 01 boundaries; the last experiment starts at slot 1000 and
        // probes 1000 and 1001, so N = 1001 and L̂ = 2 / (0.5 × 1001).
        s.push(&Outcome::basic(0, 400, false, true));
        s.push(&Outcome::basic(1, 1000, false, true));
        let l = s.loss_event_rate().unwrap();
        assert!((l - 2.0 / (0.5 * 1001.0)).abs() < 1e-12, "L̂ = {l}");
        assert!(s.predicted_duration_stddev().is_some());
    }

    #[test]
    fn hand_computed_fixture_agrees_with_batch() {
        // Fixture chosen to hit the probe-span off-by-one and the U = 0
        // degenerate corner at once. Outcomes (start slot, pattern):
        //   basic    100  01   → n01 = 1, S += 1, R += 1
        //   basic    300  10   → n10 = 1, S += 1, R += 1
        //   basic    500  11   → R += 1
        //   basic    700  11   → R += 1
        //   extended 898  001  → V += 1   (probes slots 898, 899, 900)
        // Hand-computed: R = 4, S = 2 → D̂_basic = 2(4/2 − 1) + 1 = 3;
        // U = 0, V = 1 → improved degrades to basic; N = 900 (not 901);
        // L̂ = n01 / (p·N) = 1 / (0.5 × 900).
        let outcomes = vec![
            Outcome::basic(0, 100, false, true),
            Outcome::basic(1, 300, true, false),
            Outcome::basic(2, 500, true, true),
            Outcome::basic(3, 700, true, true),
            Outcome::extended(4, 898, false, false, true),
        ];
        let mut s = StreamingEstimator::new(0.5, 0.005);
        let mut log = ExperimentLog::new(1_000, 0.005);
        for o in &outcomes {
            s.push(o);
        }
        for o in outcomes {
            log.push(o);
        }
        let batch = Estimates::from_log(&log);

        assert_eq!(
            s.effective_slots(),
            900,
            "3 probes from slot 898 end at 900"
        );
        let l = s.loss_event_rate().unwrap();
        assert!((l - 1.0 / (0.5 * 900.0)).abs() < 1e-12, "L̂ = {l}");

        for e in [s.estimates(), &batch] {
            assert_eq!(e.r, 4);
            assert_eq!(e.s, 2);
            assert_eq!(e.u, 0);
            assert_eq!(e.v, 1);
            assert!((e.duration_slots_basic().unwrap() - 3.0).abs() < 1e-12);
            assert!(
                (e.duration_slots_improved().unwrap() - 3.0).abs() < 1e-12,
                "U = 0 degrades improved to basic"
            );
        }
        assert_eq!(
            s.estimates().duration_slots_pooled(),
            batch.duration_slots_pooled()
        );
    }

    #[test]
    fn predicted_stddev_decreases_with_more_data() {
        let mut s = StreamingEstimator::new(0.5, 0.005);
        s.push(&Outcome::basic(0, 100, false, true));
        let early = s.predicted_duration_stddev().unwrap();
        // Same boundary density, 10× longer run.
        for i in 1..10u64 {
            s.push(&Outcome::basic(i, 100 + i * 100, false, true));
        }
        let late = s.predicted_duration_stddev().unwrap();
        assert!(late < early, "sd should shrink: {early} → {late}");
    }

    #[test]
    #[should_panic(expected = "p must be in (0,1]")]
    fn rejects_bad_p() {
        let _ = StreamingEstimator::new(1.5, 0.005);
    }

    /// Regression: a zero-probe outcome at slot 0 used to compute
    /// `0 + 0 - 1` for its end slot — a debug-mode panic and a
    /// release-mode wrap to `u64::MAX` that poisoned `effective_slots`
    /// (and with it `L̂` and the §7 stddev model) for the whole run.
    #[test]
    fn malformed_outcomes_do_not_poison_the_window() {
        let mut s = StreamingEstimator::new(0.5, 0.005);
        for probes in [0u8, 1, 4, 200] {
            s.push(&Outcome {
                id: u64::from(probes),
                start_slot: 0,
                probes,
                states: [true; 3],
            });
        }
        assert_eq!(s.effective_slots(), 0);
        assert_eq!(s.loss_event_rate(), None);
        assert_eq!(s.predicted_duration_stddev(), None);
        assert_eq!(s.estimates().outcomes_malformed, 4);
        assert_eq!(s.len(), 0, "malformed records are not experiments");

        // Valid data afterwards estimates as if the noise never arrived.
        s.push(&Outcome::basic(10, 400, false, true));
        let l = s.loss_event_rate().unwrap();
        assert!(l.is_finite() && l > 0.0, "L̂ = {l}");
        assert!(s.predicted_duration_stddev().unwrap().is_finite());
    }

    /// The degenerate zero-slot window: `loss_event_rate` divides by
    /// `max_slot_seen`, so boundary counts with no recorded span must
    /// yield `None`, never `inf`/`NaN`. Same audit for
    /// `predicted_duration_stddev`, which feeds the same `N` into the
    /// §7 model.
    #[test]
    fn zero_slot_window_yields_none_not_inf() {
        let mut s = StreamingEstimator::new(0.5, 0.005);
        // Force the degenerate state directly: a boundary count with an
        // empty window (as a corrupted snapshot could deserialize to).
        s.estimates.n01 = 3;
        assert_eq!(s.max_slot_seen, 0);
        assert_eq!(s.loss_event_rate(), None);
        assert_eq!(s.predicted_duration_stddev(), None);
    }

    /// A hostile start slot near `u64::MAX` saturates the window
    /// instead of wrapping it back to a tiny `N`.
    #[test]
    fn huge_start_slot_saturates_the_window() {
        let mut s = StreamingEstimator::new(0.5, 0.005);
        s.push(&Outcome::basic(0, u64::MAX - 1, false, true));
        assert_eq!(s.effective_slots(), u64::MAX);
        assert!(s.loss_event_rate().unwrap().is_finite());
    }
}
