//! Open-ended (adaptive) measurement with a stopping criterion.
//!
//! §5.1 allows a full experiment to run "in an open-ended adaptive
//! fashion, e.g., until estimates of desired accuracy for a congestion
//! characteristic have been obtained, or until such accuracy is
//! determined impossible", and §7 sketches the design: run continuously
//! at low impact and report when the validation techniques confirm the
//! estimate is robust. The paper leaves "experimental investigation of
//! stopping criteria" as future work — this module implements the natural
//! construction:
//!
//! * **converged** — the §7 model's predicted `StdDev(D̂)` (driven by the
//!   *measured* loss-event rate) has reached the target, enough episode
//!   boundaries have been observed, and every §5.4 symmetry check passes;
//! * **invalidated** — a symmetry is broken beyond what sampling noise
//!   can explain (the `01`/`10` counts differ by more than `k·√(#01+#10)`
//!   — a discrepancy "not bridged by increasing M"), or forbidden
//!   `010`/`101` patterns exceed tolerance;
//! * **exhausted** — an optional slot budget ran out first.

use crate::streaming::StreamingEstimator;
use serde::{Deserialize, Serialize};

/// Stopping-rule configuration.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AdaptiveConfig {
    /// Stop when the predicted `StdDev(D̂)` falls to this many slots.
    pub target_duration_stddev_slots: f64,
    /// Minimum episode-boundary observations (`#01 + #10`) before any
    /// verdict other than `Continue`/`Exhausted` is possible.
    pub min_boundary_events: u64,
    /// Allowed violation rate (forbidden `010`/`101` patterns among
    /// extended experiments).
    pub max_violation_rate: f64,
    /// Symmetry break threshold in standard deviations: invalidate when
    /// `|#01 − #10| > k·√(#01 + #10)`.
    pub symmetry_sigmas: f64,
    /// Optional hard budget in slots.
    pub max_slots: Option<u64>,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        Self {
            target_duration_stddev_slots: 2.0,
            min_boundary_events: 20,
            max_violation_rate: 0.05,
            symmetry_sigmas: 4.0,
            max_slots: None,
        }
    }
}

/// The controller's assessment of a run in progress.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Verdict {
    /// Keep measuring.
    Continue,
    /// Accuracy target met and assumptions validated — report and stop.
    Converged,
    /// The model's assumptions are broken; the estimate should not be
    /// trusted no matter how long the run continues.
    Invalidated {
        /// Human-readable reason.
        reason: String,
    },
    /// The slot budget ran out before convergence.
    Exhausted,
}

/// Applies an [`AdaptiveConfig`] to a [`StreamingEstimator`].
#[derive(Debug, Clone, Default)]
pub struct AdaptiveController {
    cfg: AdaptiveConfig,
}

impl AdaptiveController {
    /// New controller.
    pub fn new(cfg: AdaptiveConfig) -> Self {
        Self { cfg }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AdaptiveConfig {
        &self.cfg
    }

    /// Assess the run.
    pub fn assess(&self, s: &StreamingEstimator) -> Verdict {
        let v = s.validation();

        // Hard invalidation first: forbidden patterns.
        let ext_total = v.n000 + v.n001 + v.n010 + v.n011 + v.n100 + v.n101 + v.n110 + v.n111;
        if ext_total >= 50 && v.violation_rate() > self.cfg.max_violation_rate {
            return Verdict::Invalidated {
                reason: format!(
                    "forbidden 010/101 patterns at rate {:.3} (> {:.3})",
                    v.violation_rate(),
                    self.cfg.max_violation_rate
                ),
            };
        }

        // Symmetry break beyond sampling noise.
        let boundaries = v.n01 + v.n10;
        if boundaries >= self.cfg.min_boundary_events {
            let diff = (v.n01 as f64 - v.n10 as f64).abs();
            let noise = (boundaries as f64).sqrt() * self.cfg.symmetry_sigmas;
            if diff > noise {
                return Verdict::Invalidated {
                    reason: format!(
                        "01/10 asymmetry: |{} - {}| = {diff} exceeds {:.1}σ = {noise:.1}",
                        v.n01, v.n10, self.cfg.symmetry_sigmas
                    ),
                };
            }
        }

        // Convergence: enough boundaries and the predicted spread at the
        // measured loss-event rate is within target.
        if boundaries >= self.cfg.min_boundary_events {
            if let Some(sd) = s.predicted_duration_stddev() {
                if sd <= self.cfg.target_duration_stddev_slots {
                    return Verdict::Converged;
                }
            }
        }

        // Budget.
        if let Some(max) = self.cfg.max_slots {
            if s.effective_slots() >= max {
                return Verdict::Exhausted;
            }
        }
        Verdict::Continue
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::Outcome;

    fn estimator_with(n01: u64, n10: u64, gap_slots: u64, p: f64) -> StreamingEstimator {
        let mut s = StreamingEstimator::new(p, 0.005);
        let mut slot = 10;
        let mut id = 0;
        for _ in 0..n01 {
            s.push(&Outcome::basic(id, slot, false, true));
            id += 1;
            slot += gap_slots;
        }
        for _ in 0..n10 {
            s.push(&Outcome::basic(id, slot, true, false));
            id += 1;
            slot += gap_slots;
        }
        s
    }

    #[test]
    fn quiet_run_continues() {
        let ctl = AdaptiveController::new(AdaptiveConfig::default());
        let mut s = StreamingEstimator::new(0.3, 0.005);
        for i in 0..100 {
            s.push(&Outcome::basic(i, i * 10, false, false));
        }
        assert_eq!(ctl.assess(&s), Verdict::Continue);
    }

    #[test]
    fn converges_when_spread_is_small() {
        // Many balanced boundaries over a long run → tiny predicted sd.
        let s = estimator_with(200, 200, 500, 0.5);
        let ctl = AdaptiveController::new(AdaptiveConfig {
            target_duration_stddev_slots: 1.0,
            ..Default::default()
        });
        let sd = s.predicted_duration_stddev().unwrap();
        assert!(sd < 1.0, "predicted sd {sd}");
        assert_eq!(ctl.assess(&s), Verdict::Converged);
    }

    #[test]
    fn does_not_converge_below_min_boundaries() {
        let s = estimator_with(5, 5, 10, 0.5);
        let ctl = AdaptiveController::new(AdaptiveConfig {
            min_boundary_events: 50,
            target_duration_stddev_slots: 1000.0, // trivially met otherwise
            ..Default::default()
        });
        assert_eq!(ctl.assess(&s), Verdict::Continue);
    }

    #[test]
    fn invalidates_broken_symmetry() {
        // 90 vs 10: diff 80 ≫ 4·√100 = 40.
        let s = estimator_with(90, 10, 100, 0.5);
        let ctl = AdaptiveController::new(AdaptiveConfig {
            target_duration_stddev_slots: 0.0001, // never converge first
            ..Default::default()
        });
        match ctl.assess(&s) {
            Verdict::Invalidated { reason } => assert!(reason.contains("asymmetry")),
            other => panic!("expected invalidation, got {other:?}"),
        }
    }

    #[test]
    fn tolerates_noise_level_asymmetry() {
        // 110 vs 90: diff 20 < 4·√200 ≈ 56 → not broken.
        let s = estimator_with(110, 90, 500, 0.5);
        let ctl = AdaptiveController::new(AdaptiveConfig::default());
        assert_eq!(ctl.assess(&s), Verdict::Converged);
    }

    #[test]
    fn invalidates_forbidden_patterns() {
        let mut s = StreamingEstimator::new(0.5, 0.005);
        for i in 0..60u64 {
            // Alternate 010 violations with clean extended records.
            if i % 2 == 0 {
                s.push(&Outcome::extended(i, i * 10, false, true, false));
            } else {
                s.push(&Outcome::extended(i, i * 10, false, false, false));
            }
        }
        let ctl = AdaptiveController::new(AdaptiveConfig::default());
        match ctl.assess(&s) {
            Verdict::Invalidated { reason } => assert!(reason.contains("010")),
            other => panic!("expected invalidation, got {other:?}"),
        }
    }

    #[test]
    fn exhausts_budget() {
        let s = estimator_with(2, 2, 1000, 0.1);
        let ctl = AdaptiveController::new(AdaptiveConfig {
            max_slots: Some(1_000),
            ..Default::default()
        });
        assert_eq!(ctl.assess(&s), Verdict::Exhausted);
    }
}
