//! Experiment outcome records — the paper's `yᵢ`.
//!
//! Each experiment yields a 2- or 3-digit binary record: digit `k` is 1 if
//! the probe sent in slot `start + k` reported congestion. The log of all
//! records is the sole input to the estimators and validation checks, and
//! is shared verbatim between the simulator-driven and live tools.

use serde::{Deserialize, Serialize};

/// The outcome of one experiment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Outcome {
    /// Experiment id (matches [`crate::schedule::Experiment::id`]).
    pub id: u64,
    /// First probed slot.
    pub start_slot: u64,
    /// Number of probes (2 or 3).
    pub probes: u8,
    /// Congestion states, one per probe; only the first `probes` entries
    /// are meaningful.
    pub states: [bool; 3],
}

impl Outcome {
    /// Build a basic (two-probe) outcome.
    pub fn basic(id: u64, start_slot: u64, a: bool, b: bool) -> Self {
        Self {
            id,
            start_slot,
            probes: 2,
            states: [a, b, false],
        }
    }

    /// Build an extended (three-probe) outcome.
    pub fn extended(id: u64, start_slot: u64, a: bool, b: bool, c: bool) -> Self {
        Self {
            id,
            start_slot,
            probes: 3,
            states: [a, b, c],
        }
    }

    /// The meaningful states.
    pub fn digits(&self) -> &[bool] {
        &self.states[..usize::from(self.probes)]
    }

    /// The first digit — the paper's `zᵢ`, used by the frequency
    /// estimator.
    pub fn z(&self) -> bool {
        self.states[0]
    }

    /// The record as a small binary number (e.g. `0b01` = congestion only
    /// in the second slot), for compact pattern matching.
    pub fn pattern(&self) -> u8 {
        self.digits()
            .iter()
            .fold(0u8, |acc, &b| (acc << 1) | u8::from(b))
    }
}

/// A collected run of outcomes plus the run geometry.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExperimentLog {
    outcomes: Vec<Outcome>,
    /// Total slots in the full experiment (the paper's `N`).
    n_slots: u64,
    /// Slot width in seconds.
    slot_secs: f64,
}

impl ExperimentLog {
    /// An empty log for a run of `n_slots` slots of `slot_secs` each.
    pub fn new(n_slots: u64, slot_secs: f64) -> Self {
        Self {
            outcomes: Vec::new(),
            n_slots,
            slot_secs,
        }
    }

    /// Append one outcome.
    pub fn push(&mut self, outcome: Outcome) {
        self.outcomes.push(outcome);
    }

    /// All outcomes in arrival order.
    pub fn outcomes(&self) -> &[Outcome] {
        &self.outcomes
    }

    /// Number of experiments (the paper's `M`).
    pub fn len(&self) -> usize {
        self.outcomes.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.outcomes.is_empty()
    }

    /// Total slots in the run (`N`).
    pub fn n_slots(&self) -> u64 {
        self.n_slots
    }

    /// Slot width in seconds.
    pub fn slot_secs(&self) -> f64 {
        self.slot_secs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern_encoding() {
        assert_eq!(Outcome::basic(0, 0, false, false).pattern(), 0b00);
        assert_eq!(Outcome::basic(0, 0, false, true).pattern(), 0b01);
        assert_eq!(Outcome::basic(0, 0, true, false).pattern(), 0b10);
        assert_eq!(Outcome::basic(0, 0, true, true).pattern(), 0b11);
        assert_eq!(Outcome::extended(0, 0, false, true, true).pattern(), 0b011);
        assert_eq!(Outcome::extended(0, 0, true, false, true).pattern(), 0b101);
    }

    #[test]
    fn z_is_first_digit() {
        assert!(!Outcome::basic(0, 0, false, true).z());
        assert!(Outcome::extended(0, 0, true, false, false).z());
    }

    #[test]
    fn digits_respects_probe_count() {
        let b = Outcome::basic(0, 0, true, true);
        assert_eq!(b.digits().len(), 2);
        let e = Outcome::extended(0, 0, true, true, true);
        assert_eq!(e.digits().len(), 3);
    }

    #[test]
    fn log_accumulates() {
        let mut log = ExperimentLog::new(1000, 0.005);
        assert!(log.is_empty());
        log.push(Outcome::basic(0, 5, false, false));
        log.push(Outcome::basic(1, 17, true, true));
        assert_eq!(log.len(), 2);
        assert_eq!(log.n_slots(), 1000);
        assert_eq!(log.slot_secs(), 0.005);
        assert_eq!(log.outcomes()[1].start_slot, 17);
    }
}
