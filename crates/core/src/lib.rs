//! The BADABING probe process and estimators (§5–§6 of the paper).
//!
//! This crate is the paper's primary contribution, implemented so that the
//! same code drives both the simulator-based experiments and the live
//! (tokio/UDP) tool:
//!
//! * [`config::BadabingConfig`] — slot width Δ, experiment probability `p`,
//!   probe size `N`, and the loss-detection thresholds α and τ, with the
//!   paper's recommended parameter rules;
//! * [`schedule::ExperimentScheduler`] — the probe process: at each slot,
//!   independently with probability `p`, start a *basic experiment* (probes
//!   in slots `i, i+1`); in improved mode, half the experiments are
//!   *extended* (slots `i, i+1, i+2`) to estimate the reporting-fidelity
//!   ratio `r = p₂/p₁`;
//! * [`detector::CongestionDetector`] — §6.1's marking rule: a probe
//!   indicates congestion if any of its packets was lost, or if it lies
//!   within τ seconds of a loss indication and its one-way delay exceeds
//!   `(1-α) · OWDmax`;
//! * [`outcome::ExperimentLog`] — the collected `yᵢ` records;
//! * [`estimator::Estimates`] — the frequency estimator `F̂ = Σzᵢ/M` and
//!   the duration estimators `D̂ = 2(R/S - 1) + 1` (basic) and
//!   `D̂ = (2V/U)(R/S - 1) + 1` (improved);
//! * [`validate::Validation`] — §5.4's self-calibration checks: the
//!   `01`/`10` balance, equal-rate checks for the extended patterns, and
//!   the forbidden `010`/`101` counts;
//! * [`validate::duration_stddev_model`] — §7's accuracy model
//!   `StdDev(D̂) ≈ 1/√(pNL)` used to choose `p` and `N`.
//!
//! # Example: the estimation pipeline on hand-made records
//!
//! ```
//! use badabing_core::estimator::Estimates;
//! use badabing_core::outcome::{ExperimentLog, Outcome};
//!
//! // A run of 1000 slots of 5 ms; four experiments observed:
//! let mut log = ExperimentLog::new(1_000, 0.005);
//! log.push(Outcome::basic(0, 100, false, false)); // no congestion
//! log.push(Outcome::basic(1, 400, false, true));  // episode begins
//! log.push(Outcome::basic(2, 402, true, true));   // ongoing
//! log.push(Outcome::basic(3, 405, true, false));  // episode ends
//!
//! let est = Estimates::from_log(&log);
//! // F̂ = Σ zᵢ / M = 2/4.
//! assert_eq!(est.frequency(), Some(0.5));
//! // R = #{01,10,11} = 3, S = #{01,10} = 2 → D̂ = 2(3/2 − 1) + 1 = 2 slots.
//! assert_eq!(est.duration_slots_basic(), Some(2.0));
//! assert_eq!(est.duration_secs_basic(), Some(0.010));
//! ```

pub mod adaptive;
pub mod config;
pub mod detector;
pub mod estimator;
pub mod outcome;
pub mod schedule;
pub mod streaming;
pub mod uncertainty;
pub mod validate;

pub use adaptive::{AdaptiveConfig, AdaptiveController, Verdict};
pub use config::BadabingConfig;
pub use detector::{CongestionDetector, ProbeObservation};
pub use estimator::Estimates;
pub use outcome::{ExperimentLog, Outcome};
pub use schedule::{Experiment, ExperimentScheduler};
pub use streaming::StreamingEstimator;
pub use validate::Validation;
