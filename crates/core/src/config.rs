//! Tool configuration and the paper's parameter-selection rules.

use serde::{Deserialize, Serialize};

/// Configuration of a BADABING measurement run.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct BadabingConfig {
    /// Slot width Δ in seconds. The paper's experiments use 5 ms; the only
    /// requirement is that Δ is finer than the congestion dynamics of
    /// interest (§7).
    pub slot_secs: f64,
    /// Probability of starting an experiment at each slot (the paper's
    /// `p`). Probe load scales linearly with `p`.
    pub p: f64,
    /// Packets per probe. §6.1 shows multi-packet probes report loss
    /// episodes much more reliably; the paper settles on 3.
    pub probe_packets: u8,
    /// Probe packet size in bytes. The paper uses 600 (chosen so probes
    /// stress the router buffers like full-size frames).
    pub packet_bytes: u32,
    /// Gap between back-to-back packets within a probe, seconds. The
    /// testbed hosts managed ~30 µs.
    pub intra_probe_gap_secs: f64,
    /// Delay threshold fraction α: a probe within τ of a loss indication
    /// is marked congested if its one-way delay exceeds `(1-α)·OWDmax`.
    pub alpha: f64,
    /// Time window τ (seconds) around loss indications within which
    /// high-delay probes are marked congested.
    pub tau_secs: f64,
    /// Whether to run the improved algorithm (§5.3): half the experiments
    /// are extended to three probes to estimate `r = p₂/p₁`.
    pub improved: bool,
    /// How many recent OWDmax estimates to average when computing the
    /// delay threshold (§6.1 keeps "a number of estimates", which filters
    /// host-side outliers).
    pub owd_window: usize,
}

impl BadabingConfig {
    /// The paper's defaults for a given `p`: 5 ms slots, 3×600-byte
    /// probes, τ from [`recommended_tau`] and α from [`recommended_alpha`].
    pub fn paper_default(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0,1], got {p}");
        let slot_secs = 0.005;
        Self {
            slot_secs,
            p,
            probe_packets: 3,
            packet_bytes: 600,
            intra_probe_gap_secs: 30e-6,
            alpha: recommended_alpha(p),
            tau_secs: recommended_tau(p, slot_secs),
            improved: false,
            owd_window: 5,
        }
    }

    /// Enable the improved (three-probe) algorithm.
    pub fn with_improved(mut self) -> Self {
        self.improved = true;
        self
    }

    /// Expected probe-traffic rate in bits per second: each experiment
    /// sends 2 probes (2.5 in improved mode) of `probe_packets` packets.
    pub fn offered_load_bps(&self) -> f64 {
        let probes_per_experiment = if self.improved { 2.5 } else { 2.0 };
        let experiments_per_sec = self.p / self.slot_secs;
        experiments_per_sec
            * probes_per_experiment
            * f64::from(self.probe_packets)
            * f64::from(self.packet_bytes)
            * 8.0
    }

    /// Convert a slot count to seconds.
    pub fn slots_to_secs(&self, slots: f64) -> f64 {
        slots * self.slot_secs
    }

    /// The slot containing time `t` (seconds from run start).
    pub fn slot_of(&self, t_secs: f64) -> u64 {
        (t_secs / self.slot_secs).max(0.0) as u64
    }

    /// Start time of a slot in seconds.
    pub fn slot_start_secs(&self, slot: u64) -> f64 {
        slot as f64 * self.slot_secs
    }
}

/// The paper's τ rule (§6.2): "we set τ to the expected time between
/// probes plus one standard deviation". Experiment starts are geometric
/// with parameter `p`, so the gap has mean `1/p` and standard deviation
/// `√(1-p)/p` slots.
pub fn recommended_tau(p: f64, slot_secs: f64) -> f64 {
    assert!(p > 0.0 && p <= 1.0, "p must be in (0,1], got {p}");
    let mean = 1.0 / p;
    let sd = (1.0 - p).sqrt() / p;
    (mean + sd) * slot_secs
}

/// The paper's α choices (§6.2): "For α, we used 0.2 for a probe rate of
/// 0.1, 0.1 for probe rates of 0.3 and 0.5, and 0.5 for probe rates of 0.7
/// and 0.9." Values of `p` between those anchors take the nearest anchor.
pub fn recommended_alpha(p: f64) -> f64 {
    if p < 0.2 {
        0.2
    } else if p < 0.6 {
        0.1
    } else {
        0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tau_rule_matches_geometric_moments() {
        // p=0.1, Δ=5ms: mean gap 10 slots = 50 ms, sd = √0.9/0.1 ≈ 9.49
        // slots ≈ 47.4 ms → τ ≈ 97.4 ms.
        let tau = recommended_tau(0.1, 0.005);
        assert!((tau - 0.0974).abs() < 0.0005, "tau {tau}");
        // p=1: every slot probed, sd 0 → τ = 5 ms.
        assert!((recommended_tau(1.0, 0.005) - 0.005).abs() < 1e-12);
    }

    #[test]
    fn alpha_anchors_match_paper() {
        assert_eq!(recommended_alpha(0.1), 0.2);
        assert_eq!(recommended_alpha(0.3), 0.1);
        assert_eq!(recommended_alpha(0.5), 0.1);
        assert_eq!(recommended_alpha(0.7), 0.5);
        assert_eq!(recommended_alpha(0.9), 0.5);
    }

    #[test]
    fn offered_load_accounts_for_two_probes_per_experiment() {
        // §5.2 dispatches *two* probes per experiment: at p=0.3 and 5 ms
        // slots that is 60 experiments/s × 2 probes × 3 packets × 600 B
        // = 1.728 Mb/s. (The paper's §6.3 quotes 876 kb/s for p=0.3 —
        // exactly one 3-packet probe per selected slot — so its published
        // load accounting halves ours; Table 8 comparisons in this repo
        // match ZING's rate to the *measured* BADABING load instead.)
        let cfg = BadabingConfig::paper_default(0.3);
        let load = cfg.offered_load_bps();
        assert!((load - 1_728_000.0).abs() < 1e-6, "load {load}");
    }

    #[test]
    fn improved_mode_costs_25_percent_more() {
        let basic = BadabingConfig::paper_default(0.3);
        let improved = basic.with_improved();
        assert!((improved.offered_load_bps() / basic.offered_load_bps() - 1.25).abs() < 1e-12);
    }

    #[test]
    fn slot_conversions() {
        let cfg = BadabingConfig::paper_default(0.5);
        assert_eq!(cfg.slot_of(0.0), 0);
        assert_eq!(cfg.slot_of(0.0125), 2);
        assert_eq!(cfg.slot_start_secs(2), 0.01);
        assert!((cfg.slots_to_secs(3.0) - 0.015).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "p must be in (0,1]")]
    fn rejects_zero_p() {
        let _ = BadabingConfig::paper_default(0.0);
    }
}
