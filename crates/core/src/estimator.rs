//! Frequency and duration estimators (§5.2.2, §5.3).
//!
//! With `yᵢ` the recorded outcome of experiment `i`:
//!
//! * **Frequency.** `F̂ = Σ zᵢ / M`, `zᵢ` the first digit of `yᵢ`. Unbiased
//!   whenever probes report congestion faithfully (`p₁ = p₂ = 1`), and
//!   consistent under an alternating-renewal congestion process.
//! * **Duration (basic).** With `R = #{yᵢ ∈ {01,10,11}}` and
//!   `S = #{yᵢ ∈ {01,10}}` over two-probe experiments,
//!   `D̂ = 2(R/S − 1) + 1` slots, assuming `r = p₂/p₁ = 1`.
//! * **Duration (improved).** Three-probe experiments estimate `r̂ = U/V`
//!   with `U = #{011,110}` and `V = #{001,100}`; then
//!   `D̂ = (2V/U)(R/S − 1) + 1`, valid even when congestion mid-episode is
//!   reported with different fidelity than episode boundaries.
//!
//! §6.2 notes the paper reports the *mean* of the estimates derived from
//! the `01` and `10` boundary counts; using `S = #01 + #10` in a single
//! quotient is exactly that averaging.

use crate::outcome::{ExperimentLog, Outcome};
use serde::{Deserialize, Serialize};

/// Pattern counts and derived estimates for one run.
///
/// Every field is a plain sum over outcomes, so the struct is a
/// *mergeable summary*: [`Self::push`] folds in one outcome,
/// [`Self::merge`] adds two summaries counter-by-counter, and both
/// operations commute and associate by construction. A fleet of
/// receivers can therefore keep one `Estimates` per session, updated
/// online, and an aggregator can combine them in any order and get the
/// same bits as a single fold over the concatenated logs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Estimates {
    /// Total experiments (`M`).
    pub experiments: u64,
    /// Experiments whose first digit was 1 (`Σ zᵢ`).
    pub z_sum: u64,
    /// Two-probe experiments.
    pub basic_experiments: u64,
    /// Three-probe experiments.
    pub extended_experiments: u64,
    /// `R = #{01, 10, 11}` over two-probe experiments.
    pub r: u64,
    /// `S = #{01, 10}` over two-probe experiments.
    pub s: u64,
    /// `#{01}` alone (for validation).
    pub n01: u64,
    /// `#{10}` alone (for validation).
    pub n10: u64,
    /// `U = #{011, 110}` over three-probe experiments.
    pub u: u64,
    /// `V = #{001, 100}` over three-probe experiments.
    pub v: u64,
    /// `#{111}` over three-probe experiments (§5.5: unusable under
    /// unknown `p₃`, but usable for the triple-window duration estimator
    /// when the two-state fidelity model is assumed to extend).
    pub n111: u64,
    /// Outcomes whose probe count was outside {2, 3} — corrupted or
    /// truncated records from a hostile or damaged log. They contribute
    /// to *no* estimator counter (not even `experiments`/`z_sum`: a
    /// record we cannot classify carries no trustworthy first digit),
    /// but they are counted here so callers can surface the damage in
    /// estimate metadata instead of silently analyzing a partial log.
    #[serde(default)]
    pub outcomes_malformed: u64,
    /// Slot width in seconds (copied from the log for unit conversion).
    pub slot_secs: f64,
}

impl Estimates {
    /// Compute all counts from a log: a thin fold over [`Self::push`],
    /// kept as the reference implementation that online (incremental)
    /// estimates are differentially tested against.
    pub fn from_log(log: &ExperimentLog) -> Self {
        let mut e = Estimates {
            slot_secs: log.slot_secs(),
            ..Default::default()
        };
        for o in log.outcomes() {
            e.push(o);
        }
        e
    }

    /// Fold one outcome into the counters.
    ///
    /// Malformed outcomes (probe count outside {2, 3}) only bump
    /// `outcomes_malformed` — they used to panic here, which let one
    /// corrupted report record abort analysis of an entire run.
    pub fn push(&mut self, o: &Outcome) {
        match o.probes {
            2 => {
                self.experiments += 1;
                if o.z() {
                    self.z_sum += 1;
                }
                self.basic_experiments += 1;
                match o.pattern() {
                    0b01 => {
                        self.n01 += 1;
                        self.s += 1;
                        self.r += 1;
                    }
                    0b10 => {
                        self.n10 += 1;
                        self.s += 1;
                        self.r += 1;
                    }
                    0b11 => self.r += 1,
                    _ => {}
                }
            }
            3 => {
                self.experiments += 1;
                if o.z() {
                    self.z_sum += 1;
                }
                self.extended_experiments += 1;
                match o.pattern() {
                    0b011 | 0b110 => self.u += 1,
                    0b001 | 0b100 => self.v += 1,
                    0b111 => self.n111 += 1,
                    _ => {}
                }
            }
            // Guarded *before* `pattern()`/`digits()`, which index
            // `states[..probes]` and would themselves panic for > 3.
            _ => self.outcomes_malformed += 1,
        }
    }

    /// Exact inverse of [`Self::push`]: remove one previously-pushed
    /// outcome. The online receiver fold uses this to revise an
    /// experiment's contribution as more of its probes arrive
    /// (retract the stale outcome, push the refined one).
    ///
    /// Callers must only retract outcomes they pushed; the subtraction
    /// saturates so a violated contract degrades the counters instead
    /// of wrapping them into astronomically wrong estimates.
    pub fn retract(&mut self, o: &Outcome) {
        match o.probes {
            2 => {
                self.experiments = self.experiments.saturating_sub(1);
                if o.z() {
                    self.z_sum = self.z_sum.saturating_sub(1);
                }
                self.basic_experiments = self.basic_experiments.saturating_sub(1);
                match o.pattern() {
                    0b01 => {
                        self.n01 = self.n01.saturating_sub(1);
                        self.s = self.s.saturating_sub(1);
                        self.r = self.r.saturating_sub(1);
                    }
                    0b10 => {
                        self.n10 = self.n10.saturating_sub(1);
                        self.s = self.s.saturating_sub(1);
                        self.r = self.r.saturating_sub(1);
                    }
                    0b11 => self.r = self.r.saturating_sub(1),
                    _ => {}
                }
            }
            3 => {
                self.experiments = self.experiments.saturating_sub(1);
                if o.z() {
                    self.z_sum = self.z_sum.saturating_sub(1);
                }
                self.extended_experiments = self.extended_experiments.saturating_sub(1);
                match o.pattern() {
                    0b011 | 0b110 => self.u = self.u.saturating_sub(1),
                    0b001 | 0b100 => self.v = self.v.saturating_sub(1),
                    0b111 => self.n111 = self.n111.saturating_sub(1),
                    _ => {}
                }
            }
            _ => self.outcomes_malformed = self.outcomes_malformed.saturating_sub(1),
        }
    }

    /// Merge another summary into this one: pure counter addition, so
    /// the operation is associative and commutative by construction and
    /// `merge(from_log(a), from_log(b)) == from_log(a ++ b)` exactly.
    ///
    /// `slot_secs` is metadata, not a counter: it is kept unless unset
    /// (zero, the `Default`), in which case the other side's value is
    /// adopted. Merging summaries with *different* non-zero slot widths
    /// is a caller error — second-scale conversions would be
    /// meaningless — but the slot-denominated counters stay exact.
    pub fn merge(&mut self, other: &Estimates) {
        self.experiments += other.experiments;
        self.z_sum += other.z_sum;
        self.basic_experiments += other.basic_experiments;
        self.extended_experiments += other.extended_experiments;
        self.r += other.r;
        self.s += other.s;
        self.n01 += other.n01;
        self.n10 += other.n10;
        self.u += other.u;
        self.v += other.v;
        self.n111 += other.n111;
        self.outcomes_malformed += other.outcomes_malformed;
        if self.slot_secs == 0.0 {
            self.slot_secs = other.slot_secs;
        }
    }

    /// `F̂ = Σ zᵢ / M`; `None` for an empty log.
    pub fn frequency(&self) -> Option<f64> {
        if self.experiments == 0 {
            None
        } else {
            Some(self.z_sum as f64 / self.experiments as f64)
        }
    }

    /// Basic duration estimate in slots: `D̂ = 2(R/S − 1) + 1`. `None`
    /// when `S = 0` (no episode boundary was ever observed — the situation
    /// ZING finds itself in throughout Table 1).
    pub fn duration_slots_basic(&self) -> Option<f64> {
        if self.s == 0 {
            None
        } else {
            Some(2.0 * (self.r as f64 / self.s as f64 - 1.0) + 1.0)
        }
    }

    /// Improved duration estimate in slots:
    /// `D̂ = (2/r̂)(R/S − 1) + 1`. `None` when `S = 0` (no two-probe
    /// boundary was ever observed — the estimate's own denominator);
    /// degenerate `U`/`V` counts follow the shared
    /// [`Self::r_hat_or_unity`] policy instead of killing the estimate.
    pub fn duration_slots_improved(&self) -> Option<f64> {
        if self.s == 0 {
            return None;
        }
        let ratio = self.r as f64 / self.s as f64 - 1.0;
        Some((2.0 / self.r_hat_or_unity() * ratio + 1.0).max(1.0))
    }

    /// Estimated fidelity ratio `r̂ = U/V`; `None` when `V = 0`.
    pub fn r_hat(&self) -> Option<f64> {
        if self.v == 0 {
            None
        } else {
            Some(self.u as f64 / self.v as f64)
        }
    }

    /// `r̂` with the shared degenerate-count policy: when either boundary
    /// count is zero (`U = 0` or `V = 0`), the run carries no usable
    /// fidelity signal, so fall back to `r = 1` (the §5.2.2 assumption)
    /// rather than return a 0 or undefined ratio. Every duration
    /// estimator that needs `r̂` goes through this, so they all degrade
    /// identically — to their uncorrected forms.
    pub fn r_hat_or_unity(&self) -> f64 {
        self.r_hat().filter(|r| *r > 0.0).unwrap_or(1.0)
    }

    /// Basic duration estimate in seconds.
    pub fn duration_secs_basic(&self) -> Option<f64> {
        self.duration_slots_basic().map(|d| d * self.slot_secs)
    }

    /// Improved duration estimate in seconds.
    pub fn duration_secs_improved(&self) -> Option<f64> {
        self.duration_slots_improved().map(|d| d * self.slot_secs)
    }

    /// §5.5 extension: a duration estimate from the *three-probe*
    /// experiments alone.
    ///
    /// Over three-slot windows of an alternating process there are `B`
    /// occurrences of each single-boundary state (`001`, `100`, `011`,
    /// `110`) and `A − 2B` of `111`, so with
    /// `R₃ = U + V + #111` and `S₃ = V`:
    ///
    /// `E(R₃)/E(S₃) = 2 + r·(D − 2)/2`, giving
    /// `D̂₃ = (2/r̂)(R₃/S₃ − 2) + 2`.
    ///
    /// Assumes `#111` is reported with fidelity `p₂` like the other
    /// multi-congested states (a mild strengthening of §5.3's model,
    /// which is why the paper kept this as a "straightforward
    /// modification" rather than the default). `None` when `S₃ = V = 0`
    /// (its own denominator); the fidelity ratio degrades per
    /// [`Self::r_hat_or_unity`], and noisy sub-slot results clamp to the
    /// physical floor of one slot — the same policy as
    /// [`Self::duration_slots_improved`].
    pub fn duration_slots_triple(&self) -> Option<f64> {
        if self.v == 0 {
            return None;
        }
        let r3 = (self.u + self.v + self.n111) as f64;
        let s3 = self.v as f64;
        Some(((r3 / s3 - 2.0) * 2.0 / self.r_hat_or_unity() + 2.0).max(1.0))
    }

    /// §5.5 pooled duration estimate: the basic/improved two-probe
    /// estimate and the triple-window estimate, weighted by their
    /// respective boundary-observation counts (`S` and `S₃ = V`) — using
    /// every probe for duration "thereby decreasing the total number of
    /// probes that are required ... for the same level of confidence".
    pub fn duration_slots_pooled(&self) -> Option<f64> {
        let two = self
            .duration_slots_improved()
            .or_else(|| self.duration_slots_basic());
        let three = self.duration_slots_triple();
        match (two, three) {
            (Some(d2), Some(d3)) => {
                let w2 = self.s as f64;
                let w3 = self.v as f64;
                Some((d2 * w2 + d3 * w3) / (w2 + w3))
            }
            (Some(d2), None) => Some(d2),
            (None, Some(d3)) => Some(d3),
            (None, None) => None,
        }
    }

    /// Pooled duration estimate in seconds.
    pub fn duration_secs_pooled(&self) -> Option<f64> {
        self.duration_slots_pooled().map(|d| d * self.slot_secs)
    }

    /// Episode *rate*: episodes per slot, `F̂ / D̂` — the `L` that §7's
    /// accuracy model needs. `None` until both inputs exist.
    pub fn episode_rate_per_slot(&self) -> Option<f64> {
        match (self.frequency(), self.duration_slots_basic()) {
            (Some(f), Some(d)) if d > 0.0 => Some(f / d),
            _ => None,
        }
    }

    /// Mean *loss-free period* in slots — the complementary episode
    /// characteristic Zhang et al. track (the paper's §2 citation \[39\]
    /// reports "loss free period duration" constancy). Under the
    /// alternating-renewal model `F = D / (D + D′)`, so
    /// `D̂′ = D̂ (1 − F̂) / F̂`. `None` until both inputs exist or when no
    /// congestion was seen.
    pub fn loss_free_slots(&self) -> Option<f64> {
        let f = self.frequency()?;
        let d = self.duration_slots_basic()?;
        if f <= 0.0 || f >= 1.0 {
            return None;
        }
        Some(d * (1.0 - f) / f)
    }

    /// Mean loss-free period in seconds.
    pub fn loss_free_secs(&self) -> Option<f64> {
        self.loss_free_slots().map(|d| d * self.slot_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{ExperimentLog, Outcome};

    fn log_from_patterns(basic: &[(bool, bool)], ext: &[(bool, bool, bool)]) -> ExperimentLog {
        let mut log = ExperimentLog::new(1_000_000, 0.005);
        let mut id = 0;
        for &(a, b) in basic {
            log.push(Outcome::basic(id, id * 10, a, b));
            id += 1;
        }
        for &(a, b, c) in ext {
            log.push(Outcome::extended(id, id * 10, a, b, c));
            id += 1;
        }
        log
    }

    #[test]
    fn frequency_counts_first_digits() {
        let log = log_from_patterns(
            &[(true, false), (false, true), (false, false), (true, true)],
            &[(true, false, false), (false, false, false)],
        );
        let e = Estimates::from_log(&log);
        assert_eq!(e.experiments, 6);
        assert_eq!(e.z_sum, 3);
        assert!((e.frequency().unwrap() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn duration_counts_r_and_s() {
        // 4×{01}, 4×{10}, 8×{11}, 4×{00}: R=16, S=8 → D̂ = 2(2−1)+1 = 3.
        let mut basic = Vec::new();
        for _ in 0..4 {
            basic.push((false, true));
            basic.push((true, false));
            basic.push((true, true));
            basic.push((true, true));
            basic.push((false, false));
        }
        let log = log_from_patterns(&basic, &[]);
        let e = Estimates::from_log(&log);
        assert_eq!(e.r, 16);
        assert_eq!(e.s, 8);
        assert_eq!(e.n01, 4);
        assert_eq!(e.n10, 4);
        assert!((e.duration_slots_basic().unwrap() - 3.0).abs() < 1e-12);
        assert!((e.duration_secs_basic().unwrap() - 0.015).abs() < 1e-12);
    }

    #[test]
    fn no_boundaries_gives_none() {
        let log = log_from_patterns(&[(true, true), (false, false)], &[]);
        let e = Estimates::from_log(&log);
        assert_eq!(e.duration_slots_basic(), None);
        assert!(e.frequency().is_some());
    }

    #[test]
    fn empty_log_gives_none_frequency() {
        let log = ExperimentLog::new(100, 0.005);
        let e = Estimates::from_log(&log);
        assert_eq!(e.frequency(), None);
        assert_eq!(e.duration_slots_basic(), None);
    }

    #[test]
    fn improved_uses_u_v_correction() {
        // Perfect reporting (r = 1): U patterns (011/110) and V patterns
        // (001/100) equally common → improved equals basic.
        let ext = vec![
            (false, true, true),
            (true, true, false),
            (false, false, true),
            (true, false, false),
        ];
        let basic = vec![(false, true), (true, false), (true, true)];
        let log = log_from_patterns(&basic, &ext);
        let e = Estimates::from_log(&log);
        assert_eq!(e.u, 2);
        assert_eq!(e.v, 2);
        assert!((e.r_hat().unwrap() - 1.0).abs() < 1e-12);
        assert!(
            (e.duration_slots_improved().unwrap() - e.duration_slots_basic().unwrap()).abs()
                < 1e-12
        );
    }

    #[test]
    fn improved_corrects_depressed_p2() {
        // If mid-episode congestion is under-reported (p2 < p1), 11 states
        // leak into 01/10/00 and U shrinks relative to V. Check direction:
        // r̂ < 1 inflates the improved estimate relative to basic.
        let ext = vec![
            (false, true, true),
            (false, false, true),
            (true, false, false),
        ];
        let basic = vec![(false, true), (true, false), (true, true)];
        let log = log_from_patterns(&basic, &ext);
        let e = Estimates::from_log(&log);
        assert_eq!(e.u, 1);
        assert_eq!(e.v, 2);
        let imp = e.duration_slots_improved().unwrap();
        let bas = e.duration_slots_basic().unwrap();
        assert!(imp > bas, "improved {imp} should exceed basic {bas}");
    }

    #[test]
    fn loss_free_period_from_renewal_identity() {
        // F̂ = 0.5 (2 of 4 experiments start congested), D̂ = 3 slots →
        // D̂′ = 3·(1−0.5)/0.5 = 3 slots.
        let log = log_from_patterns(
            &[(false, true), (true, false), (true, true), (false, false)],
            &[],
        );
        let e = Estimates::from_log(&log);
        assert!((e.frequency().unwrap() - 0.5).abs() < 1e-12);
        let d = e.duration_slots_basic().unwrap();
        let gap = e.loss_free_slots().unwrap();
        assert!((gap - d * (1.0 - 0.5) / 0.5).abs() < 1e-12);
        assert!((e.loss_free_secs().unwrap() - gap * 0.005).abs() < 1e-12);
    }

    #[test]
    fn loss_free_period_undefined_at_extremes() {
        // All congested → F̂ = 1: undefined.
        let log = log_from_patterns(&[(true, true), (true, false)], &[]);
        assert_eq!(Estimates::from_log(&log).loss_free_slots(), None);
        // Never congested → F̂ = 0: undefined (and D̂ is None anyway).
        let clean = log_from_patterns(&[(false, false)], &[]);
        assert_eq!(Estimates::from_log(&clean).loss_free_slots(), None);
    }

    #[test]
    fn triple_estimator_recovers_duration_on_clean_counts() {
        // Construct counts for D = 4 slots with perfect reporting:
        // per episode, one of each single-boundary state and D−2 = 2 of
        // 111. Use 10 episodes: U = 20, V = 20, #111 = 20.
        let mut ext = Vec::new();
        for _ in 0..10 {
            ext.push((false, false, true)); // 001
            ext.push((true, false, false)); // 100
            ext.push((false, true, true)); // 011
            ext.push((true, true, false)); // 110
            ext.push((true, true, true)); // 111
            ext.push((true, true, true)); // 111
        }
        let log = log_from_patterns(&[], &ext);
        let e = Estimates::from_log(&log);
        assert_eq!(e.u, 20);
        assert_eq!(e.v, 20);
        assert_eq!(e.n111, 20);
        // R3/S3 = 60/20 = 3; r̂ = 1 → D̂ = 2(3−2)+2 = 4.
        assert!((e.duration_slots_triple().unwrap() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn pooled_weights_by_boundary_counts() {
        // Two-probe part says D = 3 with S = 8 (from duration_counts
        // test's construction); triple part says D = 4 with V = 4.
        let mut basic = Vec::new();
        for _ in 0..4 {
            basic.push((false, true));
            basic.push((true, false));
            basic.push((true, true));
            basic.push((true, true));
        }
        let ext = vec![
            (false, false, true),
            (true, false, false),
            (false, false, true),
            (true, false, false),
            (false, true, true),
            (true, true, false),
            (false, true, true),
            (true, true, false),
            (true, true, true),
            (true, true, true),
            (true, true, true),
            (true, true, true),
        ];
        let log = log_from_patterns(&basic, &ext);
        let e = Estimates::from_log(&log);
        let d2 = e.duration_slots_basic().unwrap();
        let d3 = e.duration_slots_triple().unwrap();
        let pooled = e.duration_slots_pooled().unwrap();
        let expect = (d2 * e.s as f64 + d3 * e.v as f64) / (e.s + e.v) as f64;
        assert!((pooled - expect).abs() < 1e-12);
        assert!(pooled > d2.min(d3) && pooled < d2.max(d3));
    }

    #[test]
    fn pooled_falls_back_when_one_side_missing() {
        // Only two-probe data.
        let log = log_from_patterns(&[(false, true), (true, true)], &[]);
        let e = Estimates::from_log(&log);
        assert_eq!(e.duration_slots_pooled(), e.duration_slots_basic());
        // Only triple data.
        let log3 = log_from_patterns(&[], &[(false, false, true), (true, true, true)]);
        let e3 = Estimates::from_log(&log3);
        assert_eq!(e3.duration_slots_pooled(), e3.duration_slots_triple());
        // Nothing at all.
        let empty = log_from_patterns(&[(false, false)], &[]);
        assert_eq!(Estimates::from_log(&empty).duration_slots_pooled(), None);
    }

    #[test]
    fn u_zero_degrades_to_unit_fidelity() {
        // U = 0 with V > 0: no 011/110 ever observed, so r̂ carries no
        // signal. Policy: both r̂-consuming estimators fall back to r = 1
        // rather than dying (improved) or dividing by zero (triple).
        // Basic part: 01, 10, 11, 11 → R = 4, S = 2 → D̂ = 2(2−1)+1 = 3.
        let basic = vec![(false, true), (true, false), (true, true), (true, true)];
        let ext = vec![(false, false, true), (true, false, false)];
        let e = Estimates::from_log(&log_from_patterns(&basic, &ext));
        assert_eq!(e.u, 0);
        assert_eq!(e.v, 2);
        assert_eq!(e.r_hat(), Some(0.0));
        assert!((e.r_hat_or_unity() - 1.0).abs() < 1e-12);
        let imp = e.duration_slots_improved().unwrap();
        let bas = e.duration_slots_basic().unwrap();
        assert!(
            (imp - bas).abs() < 1e-12,
            "improved {imp} degrades to basic {bas}"
        );
        // Triple: R₃/S₃ = 2/2 = 1 < 2 → raw D̂₃ = 2(1−2)+2 = 0, clamped
        // to the one-slot physical floor.
        assert!((e.duration_slots_triple().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn v_zero_degrades_to_unit_fidelity() {
        // V = 0 with U > 0: r̂ is undefined. The old improved formula
        // (2V/U)(R/S−1)+1 silently collapsed to the constant 1.0 here;
        // the unified policy degrades to the basic estimate instead.
        let basic = vec![(false, true), (true, false), (true, true), (true, true)];
        let ext = vec![(false, true, true), (true, true, false)];
        let e = Estimates::from_log(&log_from_patterns(&basic, &ext));
        assert_eq!(e.u, 2);
        assert_eq!(e.v, 0);
        assert_eq!(e.r_hat(), None);
        assert!((e.r_hat_or_unity() - 1.0).abs() < 1e-12);
        let imp = e.duration_slots_improved().unwrap();
        let bas = e.duration_slots_basic().unwrap();
        assert!(
            (imp - bas).abs() < 1e-12,
            "improved {imp} degrades to basic {bas}"
        );
        assert!(
            imp > 1.0 + 1e-12,
            "must not collapse to the old constant 1.0"
        );
        // Triple's own denominator S₃ = V is gone: no estimate.
        assert_eq!(e.duration_slots_triple(), None);
    }

    #[test]
    fn triple_clamps_r3_s3_below_two_at_one_slot() {
        // Heavy V, light U/111: R₃/S₃ = (1+4+0)/4 = 1.25 < 2 and
        // r̂ = 0.25, so the raw estimate 2(1.25−2)/0.25 + 2 = −4 slots is
        // unphysical; the policy clamps at one slot.
        let ext = vec![
            (false, false, true),
            (true, false, false),
            (false, false, true),
            (true, false, false),
            (false, true, true),
        ];
        let e = Estimates::from_log(&log_from_patterns(&[], &ext));
        assert_eq!(e.u, 1);
        assert_eq!(e.v, 4);
        assert!((e.duration_slots_triple().unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn extended_first_digits_count_toward_frequency() {
        let log = log_from_patterns(&[], &[(true, false, false), (false, true, true)]);
        let e = Estimates::from_log(&log);
        assert_eq!(e.experiments, 2);
        assert!((e.frequency().unwrap() - 0.5).abs() < 1e-12);
        assert_eq!(e.basic_experiments, 0);
        assert_eq!(e.extended_experiments, 2);
    }

    /// Regression: a hostile log with probe counts outside {2, 3} used
    /// to panic `from_log` (`outcome with {n} probes`). It must instead
    /// skip the records, count them, and estimate from the valid rest.
    #[test]
    fn hostile_log_is_counted_not_fatal() {
        let mut log = ExperimentLog::new(1_000, 0.005);
        log.push(Outcome::basic(0, 0, true, false));
        for probes in [0u8, 1, 4, 7, 255] {
            log.push(Outcome {
                id: 100 + u64::from(probes),
                start_slot: 10,
                probes,
                states: [true, true, true],
            });
        }
        log.push(Outcome::extended(1, 20, false, false, true));
        let e = Estimates::from_log(&log);
        assert_eq!(e.outcomes_malformed, 5);
        assert_eq!(e.experiments, 2, "malformed records are not experiments");
        assert_eq!(e.z_sum, 1, "malformed first digits are not trusted");
        assert_eq!(e.basic_experiments, 1);
        assert_eq!(e.extended_experiments, 1);
        assert_eq!(e.n10, 1);
        assert_eq!(e.v, 1);
    }

    #[test]
    fn retract_inverts_push() {
        let mut outcomes = vec![
            Outcome::basic(0, 0, false, true),
            Outcome::basic(1, 10, true, false),
            Outcome::basic(2, 20, true, true),
            Outcome::basic(3, 30, false, false),
            Outcome::extended(4, 40, false, true, true),
            Outcome::extended(5, 50, false, false, true),
            Outcome::extended(6, 60, true, true, true),
        ];
        outcomes.push(Outcome {
            id: 7,
            start_slot: 70,
            probes: 9,
            states: [false; 3],
        });
        let mut e = Estimates {
            slot_secs: 0.005,
            ..Default::default()
        };
        for o in &outcomes {
            e.push(o);
        }
        // Retract half, re-push, retract all: back to empty counters.
        for o in &outcomes[..4] {
            e.retract(o);
        }
        for o in &outcomes[..4] {
            e.push(o);
        }
        for o in &outcomes {
            e.retract(o);
        }
        let empty = Estimates {
            slot_secs: 0.005,
            ..Default::default()
        };
        assert_eq!(e, empty);
    }

    #[test]
    fn retract_saturates_instead_of_wrapping() {
        let mut e = Estimates::default();
        e.retract(&Outcome::basic(0, 0, true, true));
        assert_eq!(e, Estimates::default());
    }

    #[test]
    fn merge_adopts_slot_width_when_unset() {
        let mut a = Estimates::default();
        let b = Estimates {
            slot_secs: 0.005,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.slot_secs, 0.005);
        let c = Estimates {
            slot_secs: 0.010,
            ..Default::default()
        };
        a.merge(&c);
        assert_eq!(a.slot_secs, 0.005, "a set slot width is kept");
    }

    /// Deterministic pseudo-random outcome stream for the merge laws:
    /// mostly valid 2/3-probe outcomes with occasional malformed ones.
    fn stream(seed: u64, len: usize) -> Vec<Outcome> {
        let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        let mut step = move || {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            x >> 11
        };
        (0..len)
            .map(|i| {
                let bits = step();
                let probes = match bits % 16 {
                    0 => (bits >> 8) as u8, // hostile: arbitrary count
                    n if n < 8 => 2,
                    _ => 3,
                };
                Outcome {
                    id: i as u64,
                    start_slot: (i as u64) * 3,
                    probes,
                    states: [bits & 16 != 0, bits & 32 != 0, bits & 64 != 0],
                }
            })
            .collect()
    }

    fn fold(outcomes: &[Outcome]) -> Estimates {
        let mut e = Estimates {
            slot_secs: 0.005,
            ..Default::default()
        };
        for o in outcomes {
            e.push(o);
        }
        e
    }

    proptest::proptest! {
        /// merge(fold(a), fold(b)) == fold(a ++ b) for any split point.
        #[test]
        fn merge_equals_concatenated_fold(seed in 0u64..1024, len in 0usize..200, cut in 0usize..200) {
            let s = stream(seed, len);
            let cut = cut.min(s.len());
            let mut left = fold(&s[..cut]);
            left.merge(&fold(&s[cut..]));
            proptest::prop_assert_eq!(left, fold(&s));
        }

        #[test]
        fn merge_is_commutative(sa in 0u64..512, sb in 0u64..512, la in 0usize..150, lb in 0usize..150) {
            let (a, b) = (fold(&stream(sa, la)), fold(&stream(sb, lb)));
            let mut ab = a;
            ab.merge(&b);
            let mut ba = b;
            ba.merge(&a);
            proptest::prop_assert_eq!(ab, ba);
        }

        #[test]
        fn merge_is_associative(sa in 0u64..256, sb in 0u64..256, sc in 0u64..256, len in 1usize..120) {
            let (a, b, c) = (fold(&stream(sa, len)), fold(&stream(sb, len)), fold(&stream(sc, len)));
            let mut left = a;
            left.merge(&b);
            left.merge(&c);
            let mut bc = b;
            bc.merge(&c);
            let mut right = a;
            right.merge(&bc);
            proptest::prop_assert_eq!(left, right);
        }

        /// Push/retract in arbitrary interleavings always lands back on
        /// the fold of what remains pushed.
        #[test]
        fn retract_is_exact_inverse(seed in 0u64..1024, len in 1usize..120, keep in 0usize..120) {
            let s = stream(seed, len);
            let keep = keep.min(s.len());
            let mut e = fold(&s);
            for o in &s[keep..] {
                e.retract(o);
            }
            proptest::prop_assert_eq!(e, fold(&s[..keep]));
        }
    }
}
