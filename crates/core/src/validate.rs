//! Self-calibration: validation checks and the accuracy model.
//!
//! §5.4: the estimator's assumptions imply several observable symmetries —
//! `P(yᵢ=01) = P(yᵢ=10)`, equal rates for the four single-congestion
//! extended patterns, equal rates for `011`/`110` — and two *forbidden*
//! patterns, `010` and `101` (§5.3 ignores those states; their occurrence
//! violates the model). [`Validation`] measures all of them so a run can
//! report its own trustworthiness ("the tool is self-calibrating in the
//! sense that it can report when estimates are poor", §1).
//!
//! §7: the reliability of the duration estimate follows
//! `StdDev(D̂) ≈ 1/√(pNL)` with `L` the per-slot rate of loss events,
//! enabling an explicit trade-off between probe load (`p`), run length
//! (`N`) and accuracy — see [`duration_stddev_model`] and
//! [`required_slots`].

use crate::outcome::ExperimentLog;
use serde::{Deserialize, Serialize};

/// Pattern tallies and symmetry checks for one run.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct Validation {
    /// `#{01}` among two-probe experiments.
    pub n01: u64,
    /// `#{10}` among two-probe experiments.
    pub n10: u64,
    /// `#{11}` among two-probe experiments.
    pub n11: u64,
    /// `#{00}` among two-probe experiments.
    pub n00: u64,
    /// `#{001}` among three-probe experiments.
    pub n001: u64,
    /// `#{100}` among three-probe experiments.
    pub n100: u64,
    /// `#{011}` among three-probe experiments.
    pub n011: u64,
    /// `#{110}` among three-probe experiments.
    pub n110: u64,
    /// `#{010}` — forbidden under the model.
    pub n010: u64,
    /// `#{101}` — forbidden under the model.
    pub n101: u64,
    /// `#{111}` (unusable for estimation, §5.5).
    pub n111: u64,
    /// `#{000}` among three-probe experiments.
    pub n000: u64,
}

impl Validation {
    /// Tally a log.
    pub fn from_log(log: &ExperimentLog) -> Self {
        let mut v = Validation::default();
        for o in log.outcomes() {
            match (o.probes, o.pattern()) {
                (2, 0b00) => v.n00 += 1,
                (2, 0b01) => v.n01 += 1,
                (2, 0b10) => v.n10 += 1,
                (2, 0b11) => v.n11 += 1,
                (3, 0b000) => v.n000 += 1,
                (3, 0b001) => v.n001 += 1,
                (3, 0b010) => v.n010 += 1,
                (3, 0b011) => v.n011 += 1,
                (3, 0b100) => v.n100 += 1,
                (3, 0b101) => v.n101 += 1,
                (3, 0b110) => v.n110 += 1,
                (3, 0b111) => v.n111 += 1,
                (n, p) => panic!("impossible outcome: {n} probes, pattern {p:#b}"),
            }
        }
        v
    }

    /// Relative discrepancy between the `01` and `10` counts:
    /// `|#01 − #10| / ((#01 + #10)/2)`; zero when both are zero. §7 notes
    /// this difference "is directly proportional to the expected standard
    /// deviation" of the duration estimate.
    pub fn boundary_discrepancy(&self) -> f64 {
        ratio_discrepancy(self.n01, self.n10)
    }

    /// Relative discrepancy between `011` and `110` counts.
    pub fn u_discrepancy(&self) -> f64 {
        ratio_discrepancy(self.n011, self.n110)
    }

    /// Relative discrepancy between `001` and `100` counts.
    pub fn v_discrepancy(&self) -> f64 {
        ratio_discrepancy(self.n001, self.n100)
    }

    /// Count of forbidden patterns (`010` + `101`). "A large number of
    /// such events is another reason to reject the resulted estimations."
    pub fn violations(&self) -> u64 {
        self.n010 + self.n101
    }

    /// Fraction of three-probe experiments that violated the model.
    pub fn violation_rate(&self) -> f64 {
        let ext = self.n000
            + self.n001
            + self.n010
            + self.n011
            + self.n100
            + self.n101
            + self.n110
            + self.n111;
        if ext == 0 {
            0.0
        } else {
            self.violations() as f64 / ext as f64
        }
    }

    /// A simple acceptance rule combining the §5.4 checks: every measured
    /// symmetry within `tolerance` (relative) and the violation rate below
    /// `tolerance` as well. Symmetries with too few samples (< 10 events)
    /// are not judged — a handful of boundary observations cannot fail a
    /// run that simply hasn't seen enough loss yet.
    pub fn passes(&self, tolerance: f64) -> bool {
        let checks = [
            (self.n01 + self.n10, self.boundary_discrepancy()),
            (self.n011 + self.n110, self.u_discrepancy()),
            (self.n001 + self.n100, self.v_discrepancy()),
        ];
        for (samples, disc) in checks {
            if samples >= 10 && disc > tolerance {
                return false;
            }
        }
        self.violation_rate() <= tolerance
    }
}

fn ratio_discrepancy(a: u64, b: u64) -> f64 {
    if a + b == 0 {
        return 0.0;
    }
    let mean = (a + b) as f64 / 2.0;
    ((a as f64) - (b as f64)).abs() / mean
}

/// §7's accuracy model: `StdDev(D̂) ≈ 1/√(pNL)` (in slots), with `p` the
/// per-slot experiment probability, `n_slots` the run length `N`, and
/// `loss_event_rate` the mean number of loss events per slot (`L`).
///
/// # Panics
/// Panics on non-positive arguments.
pub fn duration_stddev_model(p: f64, n_slots: f64, loss_event_rate: f64) -> f64 {
    assert!(
        p > 0.0 && n_slots > 0.0 && loss_event_rate > 0.0,
        "arguments must be positive"
    );
    1.0 / (p * n_slots * loss_event_rate).sqrt()
}

/// Invert the accuracy model: the run length `N` needed to reach a target
/// standard deviation at given `p` and `L`. Used to size experiments
/// up-front, or adaptively as `L` estimates firm up.
pub fn required_slots(p: f64, loss_event_rate: f64, target_stddev: f64) -> f64 {
    assert!(target_stddev > 0.0, "target must be positive");
    1.0 / (p * loss_event_rate * target_stddev * target_stddev)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{ExperimentLog, Outcome};

    fn log_with(patterns2: &[(u64, u8)], patterns3: &[(u64, u8)]) -> ExperimentLog {
        let mut log = ExperimentLog::new(1_000_000, 0.005);
        let mut id = 0;
        for &(count, pat) in patterns2 {
            for _ in 0..count {
                log.push(Outcome::basic(id, id, pat & 0b10 != 0, pat & 0b01 != 0));
                id += 1;
            }
        }
        for &(count, pat) in patterns3 {
            for _ in 0..count {
                log.push(Outcome::extended(
                    id,
                    id,
                    pat & 0b100 != 0,
                    pat & 0b010 != 0,
                    pat & 0b001 != 0,
                ));
                id += 1;
            }
        }
        log
    }

    #[test]
    fn tallies_are_exact() {
        let log = log_with(
            &[(3, 0b01), (5, 0b10), (2, 0b11), (7, 0b00)],
            &[
                (1, 0b001),
                (2, 0b100),
                (3, 0b011),
                (4, 0b110),
                (5, 0b010),
                (6, 0b101),
                (7, 0b111),
                (8, 0b000),
            ],
        );
        let v = Validation::from_log(&log);
        assert_eq!((v.n01, v.n10, v.n11, v.n00), (3, 5, 2, 7));
        assert_eq!((v.n001, v.n100, v.n011, v.n110), (1, 2, 3, 4));
        assert_eq!((v.n010, v.n101, v.n111, v.n000), (5, 6, 7, 8));
        assert_eq!(v.violations(), 11);
    }

    #[test]
    fn balanced_run_passes() {
        let log = log_with(
            &[(50, 0b01), (52, 0b10), (100, 0b11), (1000, 0b00)],
            &[
                (48, 0b001),
                (50, 0b100),
                (30, 0b011),
                (31, 0b110),
                (1, 0b010),
                (500, 0b000),
            ],
        );
        let v = Validation::from_log(&log);
        assert!(v.boundary_discrepancy() < 0.05);
        assert!(v.passes(0.25));
    }

    #[test]
    fn skewed_boundaries_fail() {
        let log = log_with(&[(100, 0b01), (10, 0b10)], &[]);
        let v = Validation::from_log(&log);
        assert!(v.boundary_discrepancy() > 1.0);
        assert!(!v.passes(0.25));
    }

    #[test]
    fn sparse_symmetries_are_not_judged() {
        // 3 boundary events total — too few to fail on, even though skewed.
        let log = log_with(&[(3, 0b01), (0, 0b10), (100, 0b00)], &[]);
        let v = Validation::from_log(&log);
        assert!(v.passes(0.25));
    }

    #[test]
    fn many_violations_fail() {
        let log = log_with(&[], &[(50, 0b010), (50, 0b101), (100, 0b000)]);
        let v = Validation::from_log(&log);
        assert!((v.violation_rate() - 0.5).abs() < 1e-12);
        assert!(!v.passes(0.25));
    }

    #[test]
    fn empty_log_passes_vacuously() {
        let v = Validation::from_log(&ExperimentLog::new(10, 0.005));
        assert_eq!(v.violations(), 0);
        assert!(v.passes(0.1));
        assert_eq!(v.boundary_discrepancy(), 0.0);
    }

    #[test]
    fn stddev_model_matches_paper_example() {
        // §7's example: 12 loss events per minute, 5 ms slots →
        // L = 12/(60×200) = 0.001.
        let l: f64 = 12.0 / (60.0 * 200.0);
        assert!((l - 0.001).abs() < 1e-12);
        let sd = duration_stddev_model(0.1, 180_000.0, l);
        assert!((sd - 1.0 / 18.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn required_slots_inverts_model() {
        let p = 0.3;
        let l = 0.002;
        let n = required_slots(p, l, 0.5);
        let sd = duration_stddev_model(p, n, l);
        assert!((sd - 0.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn model_rejects_zero_rate() {
        let _ = duration_stddev_model(0.1, 1000.0, 0.0);
    }
}
