//! Uncertainty estimates computed from the run's own counts.
//!
//! The paper closes (§8) with: "Another task is to estimate the
//! variability of the estimates of congestion frequency and duration
//! themselves directly from the measured data, under a minimal set of
//! statistical assumptions on the congestion process." This module does
//! that:
//!
//! * **Frequency.** `F̂` is a proportion over `M` experiments; under
//!   independent sampling its uncertainty is binomial, and we report the
//!   Wilson score interval (well-behaved at the small counts loss
//!   measurement lives at — a 95% Clopper-ish interval that never leaves
//!   `[0, 1]`).
//! * **Duration.** `D̂ = 2(R/S − 1) + 1` is a ratio of counts. Treating
//!   `R` and `S` as Poisson (the §7 model's regime: rare episodes,
//!   thinned by `p`) and applying the delta method,
//!   `Var(R/S) ≈ (R/S)² (1/R + 1/S)`, so
//!   `sd(D̂) ≈ 2 (R/S) √(1/R + 1/S)`. This is the *data-driven*
//!   counterpart of the a-priori `1/√(pNL)` model — it needs no estimate
//!   of `L` and tightens exactly as boundary observations accumulate.

use crate::estimator::Estimates;
use serde::{Deserialize, Serialize};

/// A symmetric-ish interval `[lo, hi]` around an estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Interval {
    /// Point estimate.
    pub estimate: f64,
    /// Lower bound.
    pub lo: f64,
    /// Upper bound.
    pub hi: f64,
}

impl Interval {
    /// Interval half-width (for the upper side).
    pub fn half_width(&self) -> f64 {
        (self.hi - self.lo) / 2.0
    }

    /// Whether the interval contains `x`.
    pub fn contains(&self, x: f64) -> bool {
        (self.lo..=self.hi).contains(&x)
    }
}

/// Wilson score interval for a proportion `k/n` at normal quantile `z`
/// (1.96 ≈ 95%).
///
/// # Panics
/// Panics if `n == 0` or `k > n` or `z <= 0`.
pub fn wilson_interval(k: u64, n: u64, z: f64) -> Interval {
    assert!(n > 0, "need at least one trial");
    assert!(k <= n, "successes exceed trials");
    assert!(z > 0.0, "z must be positive");
    let nf = n as f64;
    let p = k as f64 / nf;
    let z2 = z * z;
    let denom = 1.0 + z2 / nf;
    let center = (p + z2 / (2.0 * nf)) / denom;
    let spread = (z / denom) * (p * (1.0 - p) / nf + z2 / (4.0 * nf * nf)).sqrt();
    Interval {
        estimate: p,
        lo: (center - spread).max(0.0),
        hi: (center + spread).min(1.0),
    }
}

/// Frequency interval for a run, at the given `z` (e.g. 1.96 for 95%).
/// `None` for an empty log.
pub fn frequency_interval(est: &Estimates, z: f64) -> Option<Interval> {
    if est.experiments == 0 {
        return None;
    }
    Some(wilson_interval(est.z_sum, est.experiments, z))
}

/// Delta-method standard deviation of the basic duration estimate, in
/// slots. `None` when `R` or `S` is zero.
pub fn duration_stddev_slots(est: &Estimates) -> Option<f64> {
    if est.r == 0 || est.s == 0 {
        return None;
    }
    let ratio = est.r as f64 / est.s as f64;
    Some(2.0 * ratio * (1.0 / est.r as f64 + 1.0 / est.s as f64).sqrt())
}

/// Duration interval (±z·sd around D̂), floored at one slot. `None` until
/// the duration estimator itself is defined.
pub fn duration_interval_slots(est: &Estimates, z: f64) -> Option<Interval> {
    let d = est.duration_slots_basic()?;
    let sd = duration_stddev_slots(est)?;
    Some(Interval {
        estimate: d,
        lo: (d - z * sd).max(1.0),
        hi: d + z * sd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::outcome::{ExperimentLog, Outcome};

    fn log_with_counts(n00: u64, n01: u64, n10: u64, n11: u64) -> Estimates {
        let mut log = ExperimentLog::new(1_000_000, 0.005);
        let mut id = 0u64;
        let mut push = |a: bool, b: bool, count: u64, id: &mut u64| {
            for _ in 0..count {
                log.push(Outcome::basic(*id, *id * 3, a, b));
                *id += 1;
            }
        };
        push(false, false, n00, &mut id);
        push(false, true, n01, &mut id);
        push(true, false, n10, &mut id);
        push(true, true, n11, &mut id);
        Estimates::from_log(&log)
    }

    #[test]
    fn wilson_matches_known_values() {
        // k=5, n=10, z=1.96 → classic Wilson ≈ [0.237, 0.763].
        let i = wilson_interval(5, 10, 1.96);
        assert!((i.estimate - 0.5).abs() < 1e-12);
        assert!((i.lo - 0.2366).abs() < 0.001, "lo {}", i.lo);
        assert!((i.hi - 0.7634).abs() < 0.001, "hi {}", i.hi);
    }

    #[test]
    fn wilson_stays_in_unit_interval_at_extremes() {
        let zero = wilson_interval(0, 20, 1.96);
        assert_eq!(zero.lo, 0.0);
        assert!(zero.hi > 0.0 && zero.hi < 0.3);
        let all = wilson_interval(20, 20, 1.96);
        assert_eq!(all.hi, 1.0);
        assert!(all.lo > 0.7);
    }

    #[test]
    fn frequency_interval_covers_the_estimate() {
        let est = log_with_counts(900, 20, 20, 60);
        let i = frequency_interval(&est, 1.96).unwrap();
        assert!(i.contains(est.frequency().unwrap()));
        assert!(i.half_width() < 0.05);
    }

    #[test]
    fn duration_sd_shrinks_with_counts() {
        let small = log_with_counts(100, 4, 4, 16);
        let large = log_with_counts(10_000, 400, 400, 1_600);
        let sd_small = duration_stddev_slots(&small).unwrap();
        let sd_large = duration_stddev_slots(&large).unwrap();
        // Same ratio (D̂ identical), 100× the counts → 10× tighter.
        assert!(
            (sd_small / sd_large - 10.0).abs() < 0.1,
            "{sd_small} vs {sd_large}"
        );
        assert_eq!(small.duration_slots_basic(), large.duration_slots_basic());
    }

    #[test]
    fn duration_interval_floors_at_one_slot() {
        // Tiny counts: huge sd; the lower bound must not go below the
        // 1-slot physical floor.
        let est = log_with_counts(100, 1, 1, 2);
        let i = duration_interval_slots(&est, 1.96).unwrap();
        assert!(i.lo >= 1.0);
        assert!(i.hi > i.estimate);
    }

    #[test]
    fn undefined_without_boundaries() {
        let est = log_with_counts(10, 0, 0, 5);
        assert_eq!(duration_stddev_slots(&est), None);
        assert_eq!(duration_interval_slots(&est, 1.96), None);
    }

    #[test]
    fn empty_log_has_no_frequency_interval() {
        let log = ExperimentLog::new(10, 0.005);
        assert_eq!(frequency_interval(&Estimates::from_log(&log), 1.96), None);
    }

    #[test]
    #[should_panic(expected = "at least one trial")]
    fn wilson_rejects_zero_trials() {
        let _ = wilson_interval(0, 0, 1.96);
    }
}
