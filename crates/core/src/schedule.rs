//! The probe process: geometric experiment scheduling.
//!
//! §5.2: "For each time slot i we decide whether or not to commence a basic
//! experiment; this decision is made independently with some fixed
//! probability p over all slots." A per-slot Bernoulli(p) process is
//! equivalent to geometric gaps between experiment starts, which lets the
//! scheduler jump straight from one experiment to the next instead of
//! iterating empty slots — important at p = 0.1 with 720 000 slots.
//!
//! §5.3: in improved mode, each experiment is extended (three probes) with
//! probability ½, basic (two probes) otherwise.

use badabing_stats::dist::Geometric;
use rand::rngs::StdRng;
use rand::RngExt;

/// One scheduled experiment: probes are sent in slots
/// `start_slot .. start_slot + probes`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Experiment {
    /// Monotonically increasing experiment identifier.
    pub id: u64,
    /// The first probed slot.
    pub start_slot: u64,
    /// Number of probes (2 = basic, 3 = extended).
    pub probes: u8,
}

impl Experiment {
    /// The slots this experiment probes.
    pub fn slots(&self) -> impl Iterator<Item = u64> {
        self.start_slot..self.start_slot + u64::from(self.probes)
    }
}

/// Generates the (infinite) sequence of experiments for a run.
#[derive(Debug)]
pub struct ExperimentScheduler {
    gap: Geometric,
    improved: bool,
    rng: StdRng,
    /// Slot of the next candidate start (exclusive of already-returned
    /// starts).
    cursor: u64,
    next_id: u64,
    first: bool,
}

impl ExperimentScheduler {
    /// Create a scheduler with per-slot start probability `p`. When
    /// `improved`, experiments are extended to three probes with
    /// probability ½.
    ///
    /// # Panics
    /// Panics unless `0 < p <= 1`.
    pub fn new(p: f64, improved: bool, rng: StdRng) -> Self {
        Self {
            gap: Geometric::new(p),
            improved,
            rng,
            cursor: 0,
            next_id: 0,
            first: true,
        }
    }

    /// The next experiment in slot order. Consecutive experiments may
    /// overlap (an experiment starting at slot `i+1` overlaps one started
    /// at `i`); the probe sender simply sends all scheduled probes.
    pub fn next_experiment(&mut self) -> Experiment {
        // First start: the number of Bernoulli trials to the first success
        // counts slots 0,1,... so the start is (trials - 1); afterwards
        // each gap is the trial count itself.
        let jump = self.gap.sample_trials(&mut self.rng);
        self.cursor += if self.first { jump - 1 } else { jump };
        self.first = false;
        let probes = if self.improved && self.rng.random_bool(0.5) {
            3
        } else {
            2
        };
        let exp = Experiment {
            id: self.next_id,
            start_slot: self.cursor,
            probes,
        };
        self.next_id += 1;
        exp
    }

    /// All experiments whose *start slot* is below `n_slots` (a full
    /// experiment of `N` slots in the paper's notation).
    pub fn take_run(&mut self, n_slots: u64) -> Vec<Experiment> {
        let mut v = Vec::new();
        loop {
            let e = self.next_experiment();
            if e.start_slot >= n_slots {
                break;
            }
            v.push(e);
        }
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_stats::rng::seeded;

    #[test]
    fn experiment_count_matches_p_times_n() {
        let n_slots = 200_000u64;
        for &p in &[0.1, 0.3, 0.5, 0.9] {
            let mut s = ExperimentScheduler::new(p, false, seeded(42, "sched"));
            let run = s.take_run(n_slots);
            let expect = p * n_slots as f64;
            let got = run.len() as f64;
            assert!(
                (got - expect).abs() < 4.0 * (n_slots as f64 * p * (1.0 - p)).sqrt().max(1.0),
                "p={p}: {got} experiments, expected ≈{expect}"
            );
        }
    }

    #[test]
    fn p_one_probes_every_slot() {
        let mut s = ExperimentScheduler::new(1.0, false, seeded(1, "all"));
        let run = s.take_run(100);
        assert_eq!(run.len(), 100);
        for (i, e) in run.iter().enumerate() {
            assert_eq!(e.start_slot, i as u64);
            assert_eq!(e.probes, 2);
        }
    }

    #[test]
    fn ids_are_sequential_and_starts_nondecreasing() {
        let mut s = ExperimentScheduler::new(0.4, true, seeded(9, "seq"));
        let run = s.take_run(10_000);
        for w in run.windows(2) {
            assert_eq!(w[1].id, w[0].id + 1);
            assert!(
                w[1].start_slot > w[0].start_slot,
                "starts strictly increase"
            );
        }
    }

    #[test]
    fn improved_mode_extends_about_half() {
        let mut s = ExperimentScheduler::new(0.5, true, seeded(3, "imp"));
        let run = s.take_run(100_000);
        let extended = run.iter().filter(|e| e.probes == 3).count();
        let frac = extended as f64 / run.len() as f64;
        assert!((frac - 0.5).abs() < 0.02, "extended fraction {frac}");
    }

    #[test]
    fn basic_mode_never_extends() {
        let mut s = ExperimentScheduler::new(0.5, false, seeded(3, "basic"));
        assert!(s.take_run(10_000).iter().all(|e| e.probes == 2));
    }

    #[test]
    fn slots_iterator_covers_probe_span() {
        let e = Experiment {
            id: 0,
            start_slot: 10,
            probes: 3,
        };
        assert_eq!(e.slots().collect::<Vec<_>>(), vec![10, 11, 12]);
    }

    #[test]
    fn deterministic_given_seed() {
        let a: Vec<_> = ExperimentScheduler::new(0.2, true, seeded(7, "det")).take_run(5_000);
        let b: Vec<_> = ExperimentScheduler::new(0.2, true, seeded(7, "det")).take_run(5_000);
        assert_eq!(a, b);
    }

    #[test]
    fn geometric_gaps_have_right_mean() {
        let mut s = ExperimentScheduler::new(0.25, false, seeded(11, "gap"));
        let run = s.take_run(100_000);
        let gaps: Vec<f64> = run
            .windows(2)
            .map(|w| (w[1].start_slot - w[0].start_slot) as f64)
            .collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        assert!((mean - 4.0).abs() < 0.15, "mean gap {mean}, expected 4");
    }
}
