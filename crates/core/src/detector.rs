//! Probe-level congestion marking (§6.1).
//!
//! A probe is `N` packets sent back to back into one time slot. Many
//! packets pass through a congested link unharmed (§3's router-centric vs
//! end-to-end distinction), so probes must not rely on their own loss
//! alone. The paper's rule, assuming FIFO queueing:
//!
//! * every probe with a lost packet marks congestion, and contributes an
//!   estimate of the maximum one-way delay `OWDmax` (the delay of its most
//!   recent successfully delivered packet, which sat in a nearly full
//!   buffer);
//! * any probe within τ seconds of a loss indication whose own delay
//!   exceeds `(1-α)·OWDmax` also marks congestion.
//!
//! Keeping a small window of recent `OWDmax` estimates and using their
//! mean "effectively filters loss at end host operating system buffers or
//! in network interface card buffers" (§6.1) — and, symmetrically, lets
//! the threshold track slow changes in the path's maximum queue depth.

use crate::config::BadabingConfig;
use crate::outcome::{ExperimentLog, Outcome};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// What the receiver learned about one probe.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProbeObservation {
    /// Experiment this probe belongs to.
    pub experiment: u64,
    /// The slot the probe targeted.
    pub slot: u64,
    /// Nominal send time (slot start), seconds from run start.
    pub send_time_secs: f64,
    /// Packets sent in the probe.
    pub packets_sent: u8,
    /// Packets that never arrived.
    pub packets_lost: u8,
    /// One-way delay of the *last* successfully delivered packet, if any —
    /// the §6.1 `OWDmax` estimator when the probe saw loss.
    pub owd_last_secs: Option<f64>,
    /// Maximum one-way delay over the probe's delivered packets, if any —
    /// the probe's delay for threshold comparison.
    pub owd_max_secs: Option<f64>,
}

impl ProbeObservation {
    /// Whether any packet of the probe was lost.
    pub fn has_loss(&self) -> bool {
        self.packets_lost > 0
    }
}

/// Summary of a marking pass, for reporting and tests.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct DetectorReport {
    /// Probes examined.
    pub probes: u64,
    /// Probes with at least one lost packet.
    pub probes_with_loss: u64,
    /// Probes marked congested by the delay rule alone.
    pub marked_by_delay: u64,
    /// Experiments dropped because not all of their probes were observed.
    pub incomplete_experiments: u64,
    /// Probe packets sent by probes that were marked congested.
    pub packets_sent_marked: u64,
    /// Probe packets lost by probes that were marked congested.
    pub packets_lost_marked: u64,
}

impl DetectorReport {
    /// In-congestion packet loss intensity: the fraction of probe packets
    /// lost while the path was marked congested. Combined with the
    /// episode frequency this yields the §3 end-to-end *loss rate*:
    /// `loss_rate ≈ F̂ × intensity` (packets are only at risk during
    /// episodes, and then drop at this measured rate).
    pub fn loss_intensity(&self) -> Option<f64> {
        if self.packets_sent_marked == 0 {
            None
        } else {
            Some(self.packets_lost_marked as f64 / self.packets_sent_marked as f64)
        }
    }
}

/// Applies the §6.1 marking rule and assembles experiment outcomes.
#[derive(Debug, Clone)]
pub struct CongestionDetector {
    alpha: f64,
    tau_secs: f64,
    owd_window: usize,
}

impl CongestionDetector {
    /// Build a detector from a tool configuration.
    pub fn new(cfg: &BadabingConfig) -> Self {
        Self::with_params(cfg.alpha, cfg.tau_secs, cfg.owd_window)
    }

    /// Build a detector with explicit parameters.
    ///
    /// # Panics
    /// Panics if `alpha` is outside `[0, 1)` or `tau_secs` is negative.
    pub fn with_params(alpha: f64, tau_secs: f64, owd_window: usize) -> Self {
        assert!(
            (0.0..1.0).contains(&alpha),
            "alpha must be in [0,1), got {alpha}"
        );
        assert!(tau_secs >= 0.0, "tau must be non-negative");
        assert!(owd_window > 0, "owd window must hold at least one estimate");
        Self {
            alpha,
            tau_secs,
            owd_window,
        }
    }

    /// Mark each observation (which must be sorted by `send_time_secs`) as
    /// congested or not. Returns one flag per observation, in order.
    pub fn mark(&self, obs: &[ProbeObservation]) -> (Vec<bool>, DetectorReport) {
        debug_assert!(
            obs.windows(2)
                .all(|w| w[0].send_time_secs <= w[1].send_time_secs),
            "observations must be time-sorted"
        );
        let mut report = DetectorReport {
            probes: obs.len() as u64,
            ..Default::default()
        };

        // Loss indication times, in order.
        let loss_times: Vec<f64> = obs
            .iter()
            .filter(|o| o.has_loss())
            .map(|o| o.send_time_secs)
            .collect();
        report.probes_with_loss = loss_times.len() as u64;

        // OWDmax estimates in time order: (time, delay-of-last-delivered).
        let owd_estimates: Vec<(f64, f64)> = obs
            .iter()
            .filter(|o| o.has_loss())
            .filter_map(|o| o.owd_last_secs.map(|d| (o.send_time_secs, d)))
            .collect();

        let mut marks = Vec::with_capacity(obs.len());
        let mut loss_cursor = 0usize; // first loss time >= window start
        let mut owd_cursor = 0usize; // estimates with time <= current probe
        let mut owd_sum = 0.0f64;
        let mut owd_in_window: std::collections::VecDeque<f64> =
            std::collections::VecDeque::with_capacity(self.owd_window);

        for o in obs {
            // Advance the running OWDmax mean to this probe's time.
            while owd_cursor < owd_estimates.len()
                && owd_estimates[owd_cursor].0 <= o.send_time_secs
            {
                let v = owd_estimates[owd_cursor].1;
                owd_in_window.push_back(v);
                owd_sum += v;
                if owd_in_window.len() > self.owd_window {
                    owd_sum -= owd_in_window.pop_front().expect("window non-empty");
                }
                owd_cursor += 1;
            }

            if o.has_loss() {
                report.packets_sent_marked += u64::from(o.packets_sent);
                report.packets_lost_marked += u64::from(o.packets_lost);
                marks.push(true);
                continue;
            }

            // Is there a loss indication within ±τ?
            while loss_cursor < loss_times.len()
                && loss_times[loss_cursor] < o.send_time_secs - self.tau_secs
            {
                loss_cursor += 1;
            }
            let near_loss = loss_times
                .get(loss_cursor)
                .is_some_and(|&t| t <= o.send_time_secs + self.tau_secs);

            let over_threshold = match (near_loss, o.owd_max_secs, owd_in_window.is_empty()) {
                (true, Some(owd), false) => {
                    let owdmax = owd_sum / owd_in_window.len() as f64;
                    owd > (1.0 - self.alpha) * owdmax
                }
                _ => false,
            };
            if over_threshold {
                report.marked_by_delay += 1;
                report.packets_sent_marked += u64::from(o.packets_sent);
            }
            marks.push(over_threshold);
        }
        (marks, report)
    }

    /// Mark and assemble into an [`ExperimentLog`]: observations are
    /// grouped by experiment id and ordered by slot; experiments with a
    /// probe count other than 2 or 3 observed probes are dropped (counted
    /// in the report).
    pub fn assemble(
        &self,
        obs: &[ProbeObservation],
        n_slots: u64,
        slot_secs: f64,
    ) -> (ExperimentLog, DetectorReport) {
        let (marks, mut report) = self.mark(obs);
        let mut groups: HashMap<u64, Vec<(u64, bool)>> = HashMap::new();
        for (o, &m) in obs.iter().zip(&marks) {
            groups.entry(o.experiment).or_default().push((o.slot, m));
        }
        let mut log = ExperimentLog::new(n_slots, slot_secs);
        let mut entries: Vec<(u64, Vec<(u64, bool)>)> = groups.into_iter().collect();
        entries.sort_by_key(|(id, _)| *id);
        for (id, mut probes) in entries {
            probes.sort_by_key(|(slot, _)| *slot);
            let contiguous = probes.windows(2).all(|w| w[1].0 == w[0].0 + 1);
            match (probes.len(), contiguous) {
                (2, true) => log.push(Outcome::basic(id, probes[0].0, probes[0].1, probes[1].1)),
                (3, true) => log.push(Outcome::extended(
                    id,
                    probes[0].0,
                    probes[0].1,
                    probes[1].1,
                    probes[2].1,
                )),
                _ => report.incomplete_experiments += 1,
            }
        }
        (log, report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(experiment: u64, slot: u64, t: f64, lost: u8, owd: Option<f64>) -> ProbeObservation {
        ProbeObservation {
            experiment,
            slot,
            send_time_secs: t,
            packets_sent: 3,
            packets_lost: lost,
            owd_last_secs: owd,
            owd_max_secs: owd,
        }
    }

    fn detector() -> CongestionDetector {
        // α = 0.1, τ = 50 ms.
        CongestionDetector::with_params(0.1, 0.05, 5)
    }

    #[test]
    fn loss_always_marks() {
        let d = detector();
        let (marks, report) = d.mark(&[obs(0, 0, 0.0, 1, Some(0.15))]);
        assert_eq!(marks, vec![true]);
        assert_eq!(report.probes_with_loss, 1);
    }

    #[test]
    fn quiet_probe_is_unmarked() {
        let d = detector();
        let (marks, _) = d.mark(&[obs(0, 0, 0.0, 0, Some(0.11))]);
        assert_eq!(
            marks,
            vec![false],
            "no loss anywhere: delay alone never marks"
        );
    }

    #[test]
    fn high_delay_near_loss_marks() {
        let d = detector();
        // Loss at t=1.0 with OWDmax estimate 0.2; a lossless probe 30 ms
        // later with delay 0.19 > 0.9×0.2 must be marked.
        let input = [
            obs(0, 200, 1.00, 1, Some(0.20)),
            obs(1, 206, 1.03, 0, Some(0.19)),
        ];
        let (marks, report) = d.mark(&input);
        assert_eq!(marks, vec![true, true]);
        assert_eq!(report.marked_by_delay, 1);
    }

    #[test]
    fn low_delay_near_loss_does_not_mark() {
        let d = detector();
        let input = [
            obs(0, 200, 1.00, 1, Some(0.20)),
            obs(1, 206, 1.03, 0, Some(0.10)), // 0.10 < 0.18 threshold
        ];
        let (marks, _) = d.mark(&input);
        assert_eq!(marks, vec![true, false]);
    }

    #[test]
    fn high_delay_far_from_loss_does_not_mark() {
        let d = detector();
        let input = [
            obs(0, 200, 1.00, 1, Some(0.20)),
            obs(1, 300, 1.50, 0, Some(0.19)), // 0.5 s away ≫ τ = 50 ms
        ];
        let (marks, _) = d.mark(&input);
        assert_eq!(marks, vec![true, false]);
    }

    #[test]
    fn loss_after_probe_also_counts_as_near() {
        // "within τ of an indication" is symmetric in time: the probe just
        // before an episode's first drop sits in the filling queue.
        let d = detector();
        let input = [
            obs(0, 198, 0.99, 0, Some(0.19)),
            obs(1, 200, 1.00, 1, Some(0.20)),
            obs(2, 202, 1.01, 0, Some(0.195)),
        ];
        let (marks, _) = d.mark(&input);
        // The pre-loss probe has no OWDmax estimate available yet (the
        // first estimate arrives with the loss), so it cannot be judged.
        assert_eq!(marks, vec![false, true, true]);
    }

    #[test]
    fn owd_window_averages_estimates() {
        let d = CongestionDetector::with_params(0.1, 10.0, 2);
        // Two estimates 0.1 and 0.3 → window mean 0.2 → threshold 0.18.
        let input = [
            obs(0, 0, 0.0, 1, Some(0.1)),
            obs(1, 2, 0.01, 1, Some(0.3)),
            obs(2, 4, 0.02, 0, Some(0.19)), // above 0.18 → marked
            obs(3, 6, 0.03, 0, Some(0.17)), // below → not marked
        ];
        let (marks, _) = d.mark(&input);
        assert_eq!(marks, vec![true, true, true, false]);
    }

    #[test]
    fn assemble_groups_by_experiment() {
        let d = detector();
        let input = [
            obs(0, 10, 0.050, 1, Some(0.2)),
            obs(0, 11, 0.055, 1, Some(0.2)),
            obs(1, 40, 0.200, 0, Some(0.01)),
            obs(1, 41, 0.205, 0, Some(0.01)),
            obs(2, 60, 0.300, 0, Some(0.01)),
            obs(2, 61, 0.305, 0, Some(0.01)),
            obs(2, 62, 0.310, 0, Some(0.01)),
        ];
        let (log, report) = d.assemble(&input, 1000, 0.005);
        assert_eq!(log.len(), 3);
        assert_eq!(report.incomplete_experiments, 0);
        assert_eq!(log.outcomes()[0].pattern(), 0b11);
        assert_eq!(log.outcomes()[1].pattern(), 0b00);
        assert_eq!(log.outcomes()[2].probes, 3);
    }

    #[test]
    fn assemble_drops_incomplete_experiments() {
        let d = detector();
        let input = [
            obs(0, 10, 0.050, 0, Some(0.01)),
            // Experiment 1 lost its second probe's record entirely.
            obs(1, 20, 0.100, 0, Some(0.01)),
            obs(1, 22, 0.110, 0, Some(0.01)), // non-contiguous slots
        ];
        let (log, report) = d.assemble(&input, 1000, 0.005);
        assert_eq!(log.len(), 0);
        assert_eq!(report.incomplete_experiments, 2);
    }

    #[test]
    fn loss_intensity_counts_marked_packets() {
        let d = detector();
        // Probe 0: 1 of 3 lost (marked). Probe 1: 0 lost but near loss
        // with high delay (marked by delay). Probe 2: clean, far away.
        let input = [
            obs(0, 200, 1.00, 1, Some(0.20)),
            obs(1, 206, 1.03, 0, Some(0.19)),
            obs(2, 600, 3.00, 0, Some(0.01)),
        ];
        let (_, report) = d.mark(&input);
        assert_eq!(report.packets_sent_marked, 6);
        assert_eq!(report.packets_lost_marked, 1);
        assert!((report.loss_intensity().unwrap() - 1.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn loss_intensity_none_without_marks() {
        let d = detector();
        let (_, report) = d.mark(&[obs(0, 0, 0.0, 0, Some(0.01))]);
        assert_eq!(report.loss_intensity(), None);
    }

    #[test]
    fn fully_lost_probe_marks_without_owd() {
        let d = detector();
        let (marks, _) = d.mark(&[obs(0, 0, 0.0, 3, None)]);
        assert_eq!(marks, vec![true]);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_alpha_one() {
        let _ = CongestionDetector::with_params(1.0, 0.1, 5);
    }
}
