//! Statistical consistency of the §5 estimators on synthetic congestion.
//!
//! These tests bypass the network entirely: congestion is an alternating
//! renewal process over slots (the exact setting of the paper's
//! consistency proofs), probes read the true state subject to the §5.2.1
//! reporting model (`correct with probability p_k, else all-zeros`), and
//! the estimators must recover the true frequency and mean duration.

use badabing_core::estimator::Estimates;
use badabing_core::outcome::{ExperimentLog, Outcome};
use badabing_core::schedule::ExperimentScheduler;
use badabing_core::validate::Validation;
use badabing_stats::dist::{Exponential, Sample};
use badabing_stats::rng::seeded;
use badabing_stats::runs::EpisodeSet;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::RngExt;

/// Alternating renewal congestion: episode lengths ~ 2 + Exp(d-2),
/// gaps ~ 1 + Exp(g-1) (so means are d and g slots).
///
/// Episodes span at least two slots. The §5 duration estimators assume
/// every episode produces one `01` and one `10` boundary *and* (for the
/// U/V fidelity correction) one `011` and one `110` window; a single-slot
/// episode breaks the second invariant (it reads `010`), deflating r̂ and
/// biasing the improved estimator high. The paper's testbed episodes span
/// ~14 slots, so the model never sees that corner.
fn synthetic_congestion(n_slots: u64, mean_episode: f64, mean_gap: f64, seed: u64) -> Vec<bool> {
    let mut rng = seeded(seed, "truth");
    let ep = Exponential::with_mean((mean_episode - 2.0).max(1e-6));
    let gap = Exponential::with_mean((mean_gap - 1.0).max(1e-6));
    let mut slots = vec![false; n_slots as usize];
    let mut t = 0u64;
    loop {
        let g = 1 + gap.sample(&mut rng).round() as u64;
        t += g;
        if t >= n_slots {
            break;
        }
        let e = 2 + ep.sample(&mut rng).round() as u64;
        for s in t..(t + e).min(n_slots) {
            slots[s as usize] = true;
        }
        t += e;
        if t >= n_slots {
            break;
        }
    }
    slots
}

/// Apply the §5.2.1 reporting model to the true states of one experiment:
/// the record is correct with probability `p[k]` (k = number of congested
/// slots in the true pattern), otherwise it reads all-zeros.
fn report(true_states: &[bool], p1: f64, p2: f64, rng: &mut StdRng) -> Vec<bool> {
    let ones = true_states.iter().filter(|&&b| b).count();
    let p_correct = match ones {
        0 => 1.0,
        1 => p1,
        _ => p2,
    };
    if rng.random::<f64>() < p_correct {
        true_states.to_vec()
    } else {
        vec![false; true_states.len()]
    }
}

fn run_probes(
    truth: &[bool],
    p: f64,
    improved: bool,
    p1: f64,
    p2: f64,
    seed: u64,
) -> ExperimentLog {
    let n_slots = truth.len() as u64;
    let mut sched = ExperimentScheduler::new(p, improved, seeded(seed, "sched"));
    let mut rng = seeded(seed, "report");
    let mut log = ExperimentLog::new(n_slots, 0.005);
    for e in sched.take_run(n_slots) {
        if e.start_slot + u64::from(e.probes) > n_slots {
            continue;
        }
        let states: Vec<bool> = e.slots().map(|s| truth[s as usize]).collect();
        let reported = report(&states, p1, p2, &mut rng);
        let o = match reported.len() {
            2 => Outcome::basic(e.id, e.start_slot, reported[0], reported[1]),
            3 => Outcome::extended(e.id, e.start_slot, reported[0], reported[1], reported[2]),
            _ => unreachable!(),
        };
        log.push(o);
    }
    log
}

#[test]
fn perfect_probes_recover_frequency_and_duration() {
    let truth = synthetic_congestion(400_000, 12.0, 600.0, 1);
    let es = EpisodeSet::from_bools(&truth);
    let f_true = es.frequency();
    let d_true = es.mean_duration_slots();
    let log = run_probes(&truth, 0.3, false, 1.0, 1.0, 2);
    let est = Estimates::from_log(&log);
    let f_hat = est.frequency().unwrap();
    let d_hat = est.duration_slots_basic().unwrap();
    assert!(
        (f_hat - f_true).abs() / f_true < 0.08,
        "frequency: estimated {f_hat}, true {f_true}"
    );
    assert!(
        (d_hat - d_true).abs() / d_true < 0.12,
        "duration: estimated {d_hat} slots, true {d_true}"
    );
}

#[test]
fn equal_reporting_fidelity_keeps_duration_consistent() {
    // §5.2.2: with p1 = p2 (< 1), both R and S shrink by the same factor,
    // so the duration estimator is unaffected; the frequency estimator is
    // attenuated by exactly p1.
    let truth = synthetic_congestion(400_000, 10.0, 500.0, 3);
    let es = EpisodeSet::from_bools(&truth);
    let d_true = es.mean_duration_slots();
    let f_true = es.frequency();
    let log = run_probes(&truth, 0.5, false, 0.6, 0.6, 4);
    let est = Estimates::from_log(&log);
    let d_hat = est.duration_slots_basic().unwrap();
    assert!(
        (d_hat - d_true).abs() / d_true < 0.15,
        "duration robust to uniform under-reporting: {d_hat} vs {d_true}"
    );
    let f_hat = est.frequency().unwrap();
    assert!(
        (f_hat - 0.6 * f_true).abs() / (0.6 * f_true) < 0.15,
        "frequency attenuates by p1: {f_hat} vs {}",
        0.6 * f_true
    );
}

#[test]
fn improved_estimator_corrects_unequal_fidelity() {
    // p1 = 1, p2 = 0.5: mid-episode congestion under-reported. The basic
    // estimator is biased low; the improved estimator's U/V correction
    // recovers the true duration.
    // 2.4M slots: r̂ rides on the O(hundreds-per-100k-slots) U/V counts,
    // so the improved estimator needs a longer run than the basic ones to
    // pull its sampling noise well inside the 15% tolerance.
    let truth = synthetic_congestion(2_400_000, 10.0, 400.0, 5);
    let es = EpisodeSet::from_bools(&truth);
    let d_true = es.mean_duration_slots();
    let log = run_probes(&truth, 0.5, true, 1.0, 0.5, 6);
    let est = Estimates::from_log(&log);
    let basic = est.duration_slots_basic().unwrap();
    let improved = est.duration_slots_improved().unwrap();
    let r_hat = est.r_hat().unwrap();
    assert!(
        (r_hat - 0.5).abs() < 0.1,
        "r̂ should estimate p2/p1 = 0.5, got {r_hat}"
    );
    assert!(
        (improved - d_true).abs() / d_true < 0.15,
        "improved {improved} should track true {d_true}"
    );
    assert!(
        (basic - d_true).abs() > (improved - d_true).abs(),
        "improved ({improved}) must beat basic ({basic}) against true {d_true}"
    );
}

#[test]
fn validation_passes_on_well_behaved_runs() {
    let truth = synthetic_congestion(400_000, 8.0, 400.0, 7);
    let log = run_probes(&truth, 0.5, true, 1.0, 1.0, 8);
    let v = Validation::from_log(&log);
    assert!(
        v.passes(0.25),
        "balanced synthetic run must validate: {v:?}"
    );
    // Forbidden patterns can only arise from episodes of length 1
    // separated by exactly one slot — essentially absent at these scales.
    assert!(v.violation_rate() < 0.02);
}

#[test]
fn frequency_estimator_is_unbiased_across_replications() {
    // Run many short replications and check the *mean* of F̂ lands on F
    // (unbiasedness, §5.2.2) even though each replication is noisy.
    let truth = synthetic_congestion(50_000, 10.0, 500.0, 9);
    let es = EpisodeSet::from_bools(&truth);
    let f_true = es.frequency();
    let mut sum = 0.0;
    let reps = 40;
    for k in 0..reps {
        let log = run_probes(&truth, 0.2, false, 1.0, 1.0, 100 + k);
        sum += Estimates::from_log(&log).frequency().unwrap();
    }
    let mean = sum / reps as f64;
    assert!(
        (mean - f_true).abs() / f_true < 0.05,
        "mean F̂ over {reps} reps = {mean}, true {f_true}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// For random process parameters and probe rates, perfect probing
    /// recovers duration within a generous tolerance.
    #[test]
    fn duration_estimator_is_consistent(
        p in 0.2f64..0.9,
        mean_episode in 4.0f64..25.0,
        mean_gap in 200.0f64..800.0,
        seed in 0u64..1000,
    ) {
        let truth = synthetic_congestion(300_000, mean_episode, mean_gap, seed);
        let es = EpisodeSet::from_bools(&truth);
        prop_assume!(es.count() >= 100);
        let d_true = es.mean_duration_slots();
        let log = run_probes(&truth, p, false, 1.0, 1.0, seed.wrapping_add(1));
        let est = Estimates::from_log(&log);
        let d_hat = est.duration_slots_basic().expect("boundaries observed");
        prop_assert!(
            (d_hat - d_true).abs() / d_true < 0.25,
            "p={p}: estimated {d_hat}, true {d_true}"
        );
    }

    /// The frequency estimator is consistent for any probe rate.
    #[test]
    fn frequency_estimator_is_consistent(
        p in 0.1f64..1.0,
        mean_episode in 4.0f64..25.0,
        seed in 0u64..1000,
    ) {
        let truth = synthetic_congestion(300_000, mean_episode, 400.0, seed);
        let es = EpisodeSet::from_bools(&truth);
        prop_assume!(es.frequency() > 0.005);
        let log = run_probes(&truth, p, false, 1.0, 1.0, seed.wrapping_add(1));
        let f_hat = Estimates::from_log(&log).frequency().expect("nonempty");
        prop_assert!(
            (f_hat - es.frequency()).abs() / es.frequency() < 0.2,
            "p={p}: estimated {f_hat}, true {}", es.frequency()
        );
    }
}
