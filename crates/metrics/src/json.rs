//! A minimal JSON codec for the offline build.
//!
//! The registry-crate `serde_json` is unavailable (the vendored `serde`
//! is a no-op derive shim), so metrics snapshots and the live tool's
//! persistence files go through this hand-rolled [`Value`] tree instead.
//! It supports exactly the JSON the workspace emits and consumes:
//! objects (insertion-ordered), arrays, finite numbers, strings with the
//! standard escapes, booleans, and null. Non-finite numbers serialize as
//! `null`, matching `serde_json`'s behaviour.
//!
//! Numbers are held as `f64`, so integers round-trip exactly up to
//! 2^53 — far beyond any slot index, packet count, or nanosecond delta a
//! run produces.

use std::fmt::Write as _;

/// A parsed or to-be-serialized JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (held as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved on write.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Value)>) -> Value {
        Value::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Look up a key in an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a finite float.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as a non-negative integer (rejects fractions).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(x) if *x >= 0.0 && x.fract() == 0.0 && *x <= u64::MAX as f64 => {
                Some(*x as u64)
            }
            _ => None,
        }
    }

    /// The value as a signed integer (rejects fractions).
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Num(x) if x.fract() == 0.0 && *x >= i64::MIN as f64 && *x <= i64::MAX as f64 => {
                Some(*x as i64)
            }
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an array slice.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serialize with two-space indentation and a trailing newline.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Value::Num(x) => write_num(out, *x),
            Value::Str(s) => write_str(out, s),
            Value::Arr(items) if items.is_empty() => out.push_str("[]"),
            Value::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push(']');
            }
            Value::Obj(pairs) if pairs.is_empty() => out.push_str("{}"),
            Value::Obj(pairs) => {
                out.push('{');
                for (i, (k, v)) in pairs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    push_indent(out, indent + 1);
                    write_str(out, k);
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                push_indent(out, indent);
                out.push('}');
            }
        }
    }
}

fn push_indent(out: &mut String, levels: usize) {
    for _ in 0..levels {
        out.push_str("  ");
    }
}

fn write_num(out: &mut String, x: f64) {
    if !x.is_finite() {
        out.push_str("null");
    } else if x.fract() == 0.0 && x.abs() < 9.0e15 {
        let _ = write!(out, "{}", x as i64);
    } else {
        // Rust's default f64 Display is the shortest round-trip form.
        let _ = write!(out, "{x}");
    }
}

fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure, with a byte offset into the input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset of the failure.
    pub offset: usize,
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parse a complete JSON document (trailing whitespace allowed, trailing
/// garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number bytes"))?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("malformed number"))
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            self.pos += 4;
                            // Surrogates are not emitted by our writer;
                            // map unpaired ones to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("invalid UTF-8 in string"))?;
                    let c = rest
                        .chars()
                        .next()
                        .ok_or_else(|| self.err("unterminated string"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(pairs));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(pairs));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Value::obj(vec![
            ("name", Value::Str("live run".into())),
            ("count", Value::Num(42.0)),
            ("ratio", Value::Num(0.125)),
            ("negative", Value::Num(-12345.0)),
            ("flag", Value::Bool(true)),
            ("nothing", Value::Null),
            (
                "items",
                Value::Arr(vec![
                    Value::Num(1.0),
                    Value::Str("a\"b\\c\nd".into()),
                    Value::Null,
                ]),
            ),
            ("empty_arr", Value::Arr(vec![])),
            ("empty_obj", Value::Obj(vec![])),
        ]);
        let text = doc.to_pretty();
        let back = parse(&text).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn parses_standard_json() {
        let v = parse(r#"{"a": [1, 2.5, -3e2], "b": {"c": "x"}, "d": false}"#).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(
            v.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("d").unwrap().as_bool(), Some(false));
    }

    #[test]
    fn integer_accessors_reject_fractions() {
        let v = parse("[3, 3.5, -4]").unwrap();
        let items = v.as_arr().unwrap();
        assert_eq!(items[0].as_u64(), Some(3));
        assert_eq!(items[1].as_u64(), None);
        assert_eq!(items[2].as_i64(), Some(-4));
        assert_eq!(items[2].as_u64(), None);
    }

    #[test]
    fn large_integers_roundtrip_exactly() {
        let big = 9_007_199_254_740_992.0 - 1.0; // 2^53 - 1
        let text = Value::Num(big).to_pretty();
        assert_eq!(parse(&text).unwrap().as_f64(), Some(big));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("").is_err());
        assert!(parse("{").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("{\"a\" 1}").is_err());
        assert!(parse("nul").is_err());
        assert!(parse("1 2").is_err());
        assert!(parse("\"unterminated").is_err());
    }

    #[test]
    fn non_finite_numbers_write_as_null() {
        assert_eq!(Value::Num(f64::NAN).to_pretty().trim(), "null");
        assert_eq!(Value::Num(f64::INFINITY).to_pretty().trim(), "null");
    }

    #[test]
    fn control_characters_escape() {
        let text = Value::Str("a\u{1}b".into()).to_pretty();
        assert!(text.contains("\\u0001"), "{text}");
        assert_eq!(parse(&text).unwrap().as_str(), Some("a\u{1}b"));
    }
}
