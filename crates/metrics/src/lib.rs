//! Lightweight run observability for the BADABING workspace.
//!
//! Every long-running component — live sender, receiver, bottleneck
//! emulator, and the simulation engine's event loop — threads a
//! [`Registry`] of monotonic [`Counter`]s and fixed-bucket [`Histogram`]s
//! through its hot path and dumps a JSON snapshot at run end. The
//! snapshot is what `summarize` folds into `results/SUMMARY.md`, and what
//! a future multi-receiver scale-out will ship over the control plane.
//!
//! Design constraints, in order:
//!
//! 1. **No dependencies.** The offline build cannot fetch crates, so the
//!    JSON snapshot format is implemented by the sibling [`json`] module.
//! 2. **Hot-path cheap.** Counters are single relaxed atomic adds;
//!    histogram recording is two atomic adds plus a branch-free bucket
//!    search over a handful of fixed bounds. No locks are taken after
//!    registration.
//! 3. **Shareable.** Handles are `Arc`s; a component can hand the same
//!    counter to several threads.
//!
//! # Snapshot schema
//!
//! ```json
//! {
//!   "name": "badabing_send",
//!   "counters": { "packets_sent": 1234 },
//!   "histograms": {
//!     "send_lateness_secs": {
//!       "count": 100,
//!       "sum_secs": 0.042,
//!       "min_secs": 1e-5,
//!       "max_secs": 0.003,
//!       "mean_secs": 0.00042,
//!       "buckets": [ { "le_secs": 0.001, "count": 93 },
//!                    { "le_secs": null,  "count": 7 } ]
//!     }
//!   }
//! }
//! ```
//!
//! The last bucket's `le_secs` is `null`: it is the overflow bucket.

pub mod json;

use json::Value;
use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-written-value gauge holding one `f64`.
///
/// Counters are monotonic; periodic estimate snapshots (`F̂`, `D̂`,
/// delay quantiles) are not — they are re-derived each interval and can
/// move in either direction — so they get their own instrument. Stored
/// as the value's bit pattern in an atomic, so `set`/`get` are
/// lock-free like the other instruments.
#[derive(Debug)]
pub struct Gauge(AtomicU64);

impl Default for Gauge {
    fn default() -> Self {
        Self(AtomicU64::new(0f64.to_bits()))
    }
}

impl Gauge {
    /// Overwrite the value.
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// A fixed-bucket histogram of durations, recorded in nanoseconds.
///
/// Bounds are upper bucket edges in seconds; one implicit overflow bucket
/// catches everything above the last bound. Recording touches only
/// atomics, so a histogram can sit in a multi-threaded hot path.
#[derive(Debug)]
pub struct Histogram {
    /// Upper edges, in nanoseconds, ascending.
    bounds_ns: Vec<u64>,
    /// One slot per bound plus the overflow slot.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    sum_ns: AtomicU64,
    min_ns: AtomicU64,
    max_ns: AtomicU64,
}

/// Default edges for network latencies: 1 µs to 30 s on a 1-2-4-7
/// log-scale grid. The grid is deliberately fine below a millisecond —
/// loopback and LAN tails live there, and the previous half-decade
/// spacing quantized every sub-ms p99 to the same 300 µs edge, making
/// benchmark latency columns indistinguishable across I/O modes.
pub const LATENCY_BOUNDS_SECS: [f64; 30] = [
    1e-6, 2e-6, 4e-6, 7e-6, 1e-5, 2e-5, 4e-5, 7e-5, 1e-4, 2e-4, 4e-4, 7e-4, 1e-3, 2e-3, 4e-3, 7e-3,
    1e-2, 2e-2, 4e-2, 7e-2, 1e-1, 2e-1, 4e-1, 7e-1, 1.0, 2.0, 4.0, 7.0, 10.0, 30.0,
];

impl Histogram {
    /// A histogram with the given upper bucket edges (seconds, ascending).
    ///
    /// # Panics
    /// Panics if `bounds_secs` is empty or not strictly ascending.
    pub fn new(bounds_secs: &[f64]) -> Self {
        assert!(
            !bounds_secs.is_empty(),
            "histogram needs at least one bound"
        );
        assert!(
            bounds_secs.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly ascending"
        );
        let bounds_ns = bounds_secs
            .iter()
            .map(|&s| (s * 1e9) as u64)
            .collect::<Vec<_>>();
        let buckets = (0..=bounds_ns.len()).map(|_| AtomicU64::new(0)).collect();
        Self {
            bounds_ns,
            buckets,
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
            min_ns: AtomicU64::new(u64::MAX),
            max_ns: AtomicU64::new(0),
        }
    }

    /// A histogram with the default latency edges.
    pub fn latency() -> Self {
        Self::new(&LATENCY_BOUNDS_SECS)
    }

    /// Record a duration in seconds (negative values clamp to zero).
    pub fn record_secs(&self, secs: f64) {
        let ns = if secs <= 0.0 {
            0
        } else {
            (secs * 1e9).min(u64::MAX as f64) as u64
        };
        self.record_ns(ns);
    }

    /// Record a duration in nanoseconds.
    pub fn record_ns(&self, ns: u64) {
        let idx = self.bounds_ns.partition_point(|&b| b < ns);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
        self.min_ns.fetch_min(ns, Ordering::Relaxed);
        self.max_ns.fetch_max(ns, Ordering::Relaxed);
    }

    /// Samples recorded so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Mean of recorded samples in seconds (`None` when empty).
    pub fn mean_secs(&self) -> Option<f64> {
        let n = self.count();
        (n > 0).then(|| self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9 / n as f64)
    }

    /// Maximum recorded sample in seconds (`None` when empty).
    pub fn max_secs(&self) -> Option<f64> {
        (self.count() > 0).then(|| self.max_ns.load(Ordering::Relaxed) as f64 / 1e9)
    }

    /// Bucket-resolution estimate of the `q`-quantile (0 < q ≤ 1) in
    /// seconds: the upper edge of the bucket where the cumulative count
    /// crosses `q·total`, clamped to the observed min/max so coarse
    /// edges never report a value outside the recorded range. Samples in
    /// the overflow bucket report the observed maximum. `None` when
    /// empty.
    pub fn quantile_secs(&self, q: f64) -> Option<f64> {
        let total = self.count();
        if total == 0 || !(0.0..=1.0).contains(&q) {
            return None;
        }
        let rank = (q * total as f64).ceil().max(1.0) as u64;
        let min = self.min_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let max = self.max_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let mut seen = 0u64;
        for (i, slot) in self.buckets.iter().enumerate() {
            seen += slot.load(Ordering::Relaxed);
            if seen >= rank {
                let edge = self.bounds_ns.get(i).map_or(max, |&ns| ns as f64 / 1e9);
                return Some(edge.clamp(min, max));
            }
        }
        Some(max)
    }

    fn to_value(&self) -> Value {
        let count = self.count();
        let sum_secs = self.sum_ns.load(Ordering::Relaxed) as f64 / 1e9;
        let mut buckets = Vec::with_capacity(self.buckets.len());
        for (i, slot) in self.buckets.iter().enumerate() {
            let le = self
                .bounds_ns
                .get(i)
                .map_or(Value::Null, |&ns| Value::Num(ns as f64 / 1e9));
            buckets.push(Value::obj(vec![
                ("le_secs", le),
                ("count", Value::Num(slot.load(Ordering::Relaxed) as f64)),
            ]));
        }
        Value::obj(vec![
            ("count", Value::Num(count as f64)),
            ("sum_secs", Value::Num(sum_secs)),
            (
                "min_secs",
                if count > 0 {
                    Value::Num(self.min_ns.load(Ordering::Relaxed) as f64 / 1e9)
                } else {
                    Value::Null
                },
            ),
            ("max_secs", self.max_secs().map_or(Value::Null, Value::Num)),
            (
                "mean_secs",
                self.mean_secs().map_or(Value::Null, Value::Num),
            ),
            ("buckets", Value::Arr(buckets)),
        ])
    }
}

/// A named collection of counters and histograms.
///
/// Registration takes a short lock; the returned `Arc` handles are then
/// lock-free to update. Asking twice for the same name returns the same
/// instrument.
pub struct Registry {
    name: String,
    counters: Mutex<BTreeMap<String, Arc<Counter>>>,
    histograms: Mutex<BTreeMap<String, Arc<Histogram>>>,
    gauges: Mutex<BTreeMap<String, Arc<Gauge>>>,
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("name", &self.name)
            .field(
                "counters",
                &self.counters.lock().expect("registry poisoned").len(),
            )
            .field(
                "histograms",
                &self.histograms.lock().expect("registry poisoned").len(),
            )
            .field(
                "gauges",
                &self.gauges.lock().expect("registry poisoned").len(),
            )
            .finish()
    }
}

impl Registry {
    /// An empty registry labelled `name` (the snapshot's `name` field).
    pub fn new(name: &str) -> Self {
        Self {
            name: name.to_string(),
            counters: Mutex::new(BTreeMap::new()),
            histograms: Mutex::new(BTreeMap::new()),
            gauges: Mutex::new(BTreeMap::new()),
        }
    }

    /// The registry's label.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Get or create a counter.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.counters
            .lock()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create a gauge (initial value `0.0`).
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.gauges
            .lock()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_default()
            .clone()
    }

    /// Get or create a histogram with the default latency bounds.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.histogram_with(name, &LATENCY_BOUNDS_SECS)
    }

    /// Get or create a histogram with explicit bounds (ignored if the
    /// histogram already exists).
    pub fn histogram_with(&self, name: &str, bounds_secs: &[f64]) -> Arc<Histogram> {
        self.histograms
            .lock()
            .expect("registry poisoned")
            .entry(name.to_string())
            .or_insert_with(|| Arc::new(Histogram::new(bounds_secs)))
            .clone()
    }

    /// A name-prefixing view: instruments created through the returned
    /// [`Scope`] land in this registry under `<prefix>_<name>`, so
    /// per-entity instruments (e.g. one receiver session among many)
    /// share a snapshot with the global ones without a second registry.
    pub fn scope(&self, prefix: impl Into<String>) -> Scope<'_> {
        Scope {
            registry: self,
            prefix: prefix.into(),
        }
    }

    /// Snapshot the registry as a JSON value.
    pub fn snapshot(&self) -> Value {
        let counters = self
            .counters
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, c)| (k.clone(), Value::Num(c.get() as f64)))
            .collect();
        let histograms = self
            .histograms
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, h)| (k.clone(), h.to_value()))
            .collect();
        let gauges: Vec<(String, Value)> = self
            .gauges
            .lock()
            .expect("registry poisoned")
            .iter()
            .map(|(k, g)| {
                let v = g.get();
                // JSON has no NaN/inf; snapshot non-finite values as null.
                let v = if v.is_finite() {
                    Value::Num(v)
                } else {
                    Value::Null
                };
                (k.clone(), v)
            })
            .collect();
        let mut fields = vec![
            ("name", Value::Str(self.name.clone())),
            ("counters", Value::Obj(counters)),
            ("histograms", Value::Obj(histograms)),
        ];
        // Only emitted when present, keeping every pre-gauge snapshot
        // byte-identical to what it was.
        if !gauges.is_empty() {
            fields.push(("gauges", Value::Obj(gauges)));
        }
        Value::obj(fields)
    }

    /// Snapshot as pretty-printed JSON text.
    pub fn snapshot_json(&self) -> String {
        self.snapshot().to_pretty()
    }

    /// Write the snapshot to `path`, creating parent directories.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.snapshot_json())
    }
}

/// A borrowed, name-prefixing view over a [`Registry`].
///
/// Created by [`Registry::scope`]. The scope itself is cheap and
/// short-lived — the `Arc` instrument handles it hands out live in the
/// parent registry and outlive it.
pub struct Scope<'a> {
    registry: &'a Registry,
    prefix: String,
}

impl Scope<'_> {
    fn full(&self, name: &str) -> String {
        format!("{}_{}", self.prefix, name)
    }

    /// Get or create `<prefix>_<name>` in the parent registry.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        self.registry.counter(&self.full(name))
    }

    /// Get or create gauge `<prefix>_<name>`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        self.registry.gauge(&self.full(name))
    }

    /// Get or create histogram `<prefix>_<name>` with the default
    /// latency bounds.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        self.registry.histogram(&self.full(name))
    }

    /// Get or create histogram `<prefix>_<name>` with explicit bounds
    /// (ignored if it already exists).
    pub fn histogram_with(&self, name: &str, bounds_secs: &[f64]) -> Arc<Histogram> {
        self.registry.histogram_with(&self.full(name), bounds_secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_share() {
        let reg = Registry::new("test");
        let a = reg.counter("packets");
        let b = reg.counter("packets");
        a.inc();
        b.add(4);
        assert_eq!(reg.counter("packets").get(), 5);
        assert_eq!(reg.counter("other").get(), 0);
    }

    #[test]
    fn scoped_instruments_share_the_parent_registry() {
        let reg = Registry::new("scoped");
        let scope = reg.scope("session_7");
        scope.counter("packets").add(3);
        scope.histogram("delay").record_secs(0.01);
        // Same storage, prefixed names: visible through the parent and
        // in its snapshot alongside unscoped instruments.
        reg.counter("global").inc();
        assert_eq!(reg.counter("session_7_packets").get(), 3);
        let v = reg.snapshot();
        let counters = v.get("counters").unwrap();
        assert_eq!(counters.get("session_7_packets").unwrap().as_u64(), Some(3));
        assert_eq!(counters.get("global").unwrap().as_u64(), Some(1));
        assert!(v
            .get("histograms")
            .unwrap()
            .get("session_7_delay")
            .is_some());
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let h = Histogram::new(&[0.001, 0.01, 0.1]);
        h.record_secs(0.0005); // bucket 0
        h.record_secs(0.001); //  bucket 0 (edge is inclusive)
        h.record_secs(0.005); //  bucket 1
        h.record_secs(0.5); //    overflow
        h.record_secs(-3.0); //   clamps to 0, bucket 0
        assert_eq!(h.count(), 5);
        let v = h.to_value();
        let buckets = v.get("buckets").unwrap().as_arr().unwrap();
        assert_eq!(buckets.len(), 4);
        assert_eq!(buckets[0].get("count").unwrap().as_u64(), Some(3));
        assert_eq!(buckets[1].get("count").unwrap().as_u64(), Some(1));
        assert_eq!(buckets[2].get("count").unwrap().as_u64(), Some(0));
        assert_eq!(buckets[3].get("count").unwrap().as_u64(), Some(1));
        assert_eq!(buckets[3].get("le_secs").unwrap(), &Value::Null);
        assert!((h.max_secs().unwrap() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn histogram_stats_track_min_max_mean() {
        let h = Histogram::latency();
        assert_eq!(h.mean_secs(), None);
        assert_eq!(h.max_secs(), None);
        h.record_secs(0.002);
        h.record_secs(0.004);
        assert!((h.mean_secs().unwrap() - 0.003).abs() < 1e-9);
        assert!((h.max_secs().unwrap() - 0.004).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "strictly ascending")]
    fn unsorted_bounds_panic() {
        let _ = Histogram::new(&[0.1, 0.01]);
    }

    #[test]
    fn quantile_estimates_land_in_the_right_bucket() {
        let h = Histogram::new(&[0.001, 0.01, 0.1]);
        assert_eq!(h.quantile_secs(0.99), None);
        for _ in 0..98 {
            h.record_secs(0.0005); // bucket 0
        }
        h.record_secs(0.05); //  bucket 2
        h.record_secs(0.5); //   overflow
        let p50 = h.quantile_secs(0.50).unwrap();
        assert!((p50 - 0.001).abs() < 1e-9, "p50 = {p50}");
        let p99 = h.quantile_secs(0.99).unwrap();
        assert!((p99 - 0.1).abs() < 1e-9, "p99 = {p99}");
        // The last sample lives in the overflow bucket: the observed
        // max, not infinity.
        let p100 = h.quantile_secs(1.0).unwrap();
        assert!((p100 - 0.5).abs() < 1e-9, "p100 = {p100}");
        // A one-sample histogram clamps to the observation.
        let one = Histogram::new(&[1.0]);
        one.record_secs(0.25);
        assert!((one.quantile_secs(0.99).unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn default_latency_edges_resolve_sub_millisecond_tails() {
        // Regression for the live-bench latency columns: two streams
        // whose p99s genuinely differ (90 µs vs 160 µs) must produce
        // distinct estimates. The old half-decade grid put both in the
        // same [1e-4, 3e-4] bucket and reported 300 µs for each.
        let fast = Histogram::latency();
        let slow = Histogram::latency();
        for _ in 0..1000 {
            fast.record_secs(90e-6);
            slow.record_secs(160e-6);
        }
        let p_fast = fast.quantile_secs(0.99).unwrap();
        let p_slow = slow.quantile_secs(0.99).unwrap();
        assert!(
            p_fast < p_slow,
            "sub-ms p99s collapsed: fast={p_fast} slow={p_slow}"
        );
        assert!(p_fast <= 1e-4, "90 µs stream must stay below 100 µs edge");
        assert!(p_slow <= 2e-4, "160 µs stream must stay below 200 µs edge");
        // The grid still covers the long tail.
        assert!(
            (LATENCY_BOUNDS_SECS.last().unwrap() - 30.0).abs() < 1e-12,
            "top edge stays 30 s"
        );
    }

    /// Pinning regression for the estimator-path hardening: a remote
    /// peer can drive quantile queries, so out-of-range `q` (including
    /// NaN) must stay `None`, never a panic.
    #[test]
    fn quantile_out_of_range_is_none_not_panic() {
        let h = Histogram::latency();
        h.record_secs(0.01);
        assert_eq!(h.quantile_secs(-0.1), None);
        assert_eq!(h.quantile_secs(1.5), None);
        assert_eq!(h.quantile_secs(f64::NAN), None);
        assert!(h.quantile_secs(0.5).is_some());
    }

    #[test]
    fn gauges_hold_last_value_and_snapshot() {
        let reg = Registry::new("g");
        let g = reg.gauge("fleet_frequency");
        assert_eq!(g.get(), 0.0);
        g.set(0.25);
        g.set(0.125); // non-monotonic by design
        reg.scope("fleet").gauge("sessions").set(2048.0);
        reg.gauge("bad").set(f64::NAN);
        let v = reg.snapshot();
        let gauges = v.get("gauges").unwrap();
        assert_eq!(gauges.get("fleet_frequency").unwrap(), &Value::Num(0.125));
        assert_eq!(gauges.get("fleet_sessions").unwrap().as_u64(), Some(2048));
        assert_eq!(gauges.get("bad").unwrap(), &Value::Null);
    }

    #[test]
    fn snapshot_without_gauges_has_no_gauges_section() {
        let reg = Registry::new("plain");
        reg.counter("x").inc();
        assert!(reg.snapshot().get("gauges").is_none());
    }

    #[test]
    fn snapshot_roundtrips_through_json() {
        let reg = Registry::new("roundtrip");
        reg.counter("sent").add(10);
        reg.histogram("delay").record_secs(0.02);
        let text = reg.snapshot_json();
        let v = json::parse(&text).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("roundtrip"));
        assert_eq!(
            v.get("counters").unwrap().get("sent").unwrap().as_u64(),
            Some(10)
        );
        let hist = v.get("histograms").unwrap().get("delay").unwrap();
        assert_eq!(hist.get("count").unwrap().as_u64(), Some(1));
    }

    #[test]
    fn save_writes_file_with_parents() {
        let dir = std::env::temp_dir().join("badabing-metrics-test");
        let _ = std::fs::remove_dir_all(&dir);
        let path = dir.join("sub").join("m.json");
        let reg = Registry::new("io");
        reg.counter("x").inc();
        reg.save(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(json::parse(&text).is_ok());
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn concurrent_updates_are_not_lost() {
        let reg = Arc::new(Registry::new("mt"));
        let c = reg.counter("hits");
        let h = reg.histogram("lat");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                let h = h.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                        h.record_ns(500);
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
        assert_eq!(h.count(), 40_000);
    }
}
