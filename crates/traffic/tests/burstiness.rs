//! Workload-character validation: the ON/OFF aggregate is long-range
//! dependent, the CBR blaster is not.

use badabing_sim::monitor::TraceEvent;
use badabing_sim::packet::FlowId;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_stats::selfsim::hurst_variance_time;
use badabing_stats::timeseries::SlotSeries;
use badabing_traffic::cbr::{attach_cbr, CbrEpisodeConfig};
use badabing_traffic::onoff::attach_onoff_aggregate;

/// Arrival byte-rate series at the bottleneck, 10 ms bins.
fn arrival_series(db: &Dumbbell, secs: f64) -> Vec<f64> {
    let mut series = SlotSeries::new((secs / 0.01) as usize, 0.01);
    for r in db.monitor().borrow().records() {
        if r.event == TraceEvent::Enqueue {
            series.record_add(r.t.as_secs_f64(), f64::from(r.size));
        }
    }
    series.values().to_vec()
}

#[test]
fn onoff_aggregate_is_long_range_dependent() {
    let mut db = Dumbbell::standard();
    db.enable_trace();
    attach_onoff_aggregate(&mut db, 24, 0.6, 6.0, 0.4, 100, 4);
    let secs = 240.0;
    db.run_for(secs);
    let series = arrival_series(&db, secs);
    let h = hurst_variance_time(&series).expect("series long enough");
    assert!(
        h > 0.6,
        "ON/OFF aggregate H = {h}, expected long-range dependence"
    );
}

#[test]
fn cbr_episodes_are_not_long_range_dependent() {
    // Exponentially spaced constant bursts: renewal process, H ≈ 0.5
    // (the variance-time fit sees short bursts over an idle baseline;
    // allow slack but it must sit clearly below the ON/OFF aggregate).
    let mut db = Dumbbell::standard();
    db.enable_trace();
    let cfg = CbrEpisodeConfig {
        mean_gap_secs: 2.0,
        ..CbrEpisodeConfig::paper_default()
    };
    attach_cbr(&mut db, FlowId(1), cfg, seeded(4, "cbr"));
    let secs = 240.0;
    db.run_for(secs);
    let series = arrival_series(&db, secs);
    let h = hurst_variance_time(&series).expect("series long enough");
    assert!(
        h < 0.72,
        "CBR episodes H = {h}, should not look long-range dependent"
    );
}
