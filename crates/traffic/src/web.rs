//! Harpoon-like web-session traffic.
//!
//! Harpoon [31 in the paper] generates "web-like" load: sessions arrive
//! randomly, each transferring heavy-tailed file sizes over TCP, with the
//! offered load tuned to an average volume. For the loss experiments the
//! paper configured it "to briefly increase its load in order to induce
//! packet loss, on average, every 20 seconds" (§4.2).
//!
//! [`WebSessionGenerator`] reproduces that construction:
//!
//! * baseline: Poisson arrivals of finite TCP transfers with Pareto sizes,
//!   tuned so the bottleneck runs at a target utilization below capacity;
//! * surges: at exponential intervals (mean 20 s), a batch of large
//!   transfers starts simultaneously; their combined slow-start ramp
//!   overflows the buffer and creates a loss episode whose length depends
//!   on the congestion-control reaction — which is exactly why this
//!   scenario is the hardest for a loss-measurement tool.
//!
//! All sender state machines live inside one simulation node (flows are
//! created and retired dynamically, which the static node graph can't
//! express otherwise); the matching receivers live in [`WebSinkNode`].

use badabing_sim::node::{Context, Node, NodeId};
use badabing_sim::packet::{FlowId, Packet, PacketKind};
use badabing_sim::time::SimDuration;
use badabing_stats::dist::{Exponential, Pareto, Sample};
use badabing_tcp::conn::{ReceiverConn, SenderConn, SenderOut, TcpConfig};
use rand::rngs::StdRng;
use std::any::Any;
use std::collections::HashMap;

/// Configuration for the web-like workload.
#[derive(Debug, Clone)]
pub struct WebConfig {
    /// Target baseline utilization of the bottleneck (0..1).
    pub base_util: f64,
    /// Pareto scale (minimum transfer size) in segments.
    pub pareto_scale_segments: f64,
    /// Pareto shape; 1.2 is the classic web-transfer tail.
    pub pareto_shape: f64,
    /// Hard cap on a single transfer, in segments.
    pub cap_segments: f64,
    /// Mean gap between load surges in seconds.
    pub surge_mean_gap_secs: f64,
    /// Number of transfers started simultaneously per surge.
    pub surge_transfers: usize,
    /// Size of each surge transfer in segments.
    pub surge_segments: u64,
    /// Upper bound on concurrently active transfers (memory/event guard).
    pub max_concurrent: usize,
    /// TCP parameters for every transfer (`total_segments` is set per
    /// transfer).
    pub tcp: TcpConfig,
    /// Bottleneck rate, used to convert `base_util` into an arrival rate.
    pub bottleneck_rate_bps: u64,
}

impl WebConfig {
    /// Defaults tuned for the standard OC3 dumbbell: ~50% baseline load,
    /// surges every 20 s.
    pub fn paper_default() -> Self {
        Self {
            base_util: 0.50,
            pareto_scale_segments: 20.0,
            pareto_shape: 1.2,
            cap_segments: 5_000.0,
            surge_mean_gap_secs: 20.0,
            surge_transfers: 25,
            surge_segments: 800,
            max_concurrent: 4_000,
            tcp: TcpConfig::default(),
            bottleneck_rate_bps: 155_520_000,
        }
    }

    /// Mean transfer size in segments (untruncated Pareto mean).
    pub fn mean_segments(&self) -> f64 {
        assert!(
            self.pareto_shape > 1.0,
            "shape must exceed 1 for a finite mean"
        );
        self.pareto_shape * self.pareto_scale_segments / (self.pareto_shape - 1.0)
    }

    /// Baseline transfer arrival rate (transfers per second) implied by
    /// the utilization target.
    pub fn arrival_rate(&self) -> f64 {
        let mean_bits = self.mean_segments() * f64::from(self.tcp.mss_bytes) * 8.0;
        self.base_util * self.bottleneck_rate_bps as f64 / mean_bits
    }
}

const TOKEN_ARRIVAL: u64 = u64::MAX;
const TOKEN_SURGE: u64 = u64::MAX - 1;

fn rto_token(flow_raw: u32, gen: u64) -> u64 {
    debug_assert!(gen < (1 << 32), "rto generation overflowed token encoding");
    (u64::from(flow_raw) << 32) | (gen & 0xFFFF_FFFF)
}

/// Counters exposed by the generator for reporting and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct WebStats {
    /// Baseline transfers started.
    pub transfers_started: u64,
    /// Surge transfers started.
    pub surge_transfers_started: u64,
    /// Transfers fully acknowledged.
    pub transfers_completed: u64,
    /// Transfers skipped because `max_concurrent` was reached.
    pub transfers_skipped: u64,
    /// Number of surges fired.
    pub surges: u64,
}

/// The client side: owns every active TCP sender.
pub struct WebSessionGenerator {
    cfg: WebConfig,
    flow_base: u32,
    next_flow: u32,
    bottleneck: NodeId,
    ingress_delay: SimDuration,
    conns: HashMap<u32, SenderConn>,
    arrivals: Exponential,
    surge_gap: Exponential,
    sizes: Pareto,
    rng: StdRng,
    stats: WebStats,
    out: Vec<SenderOut>,
}

impl WebSessionGenerator {
    /// Create the generator. `flow_base` is the first flow id used; all
    /// ids in `[flow_base, flow_base + 2^24)` must be routed (use
    /// [`badabing_sim::topology::Dumbbell::route_default`]).
    pub fn new(
        cfg: WebConfig,
        flow_base: u32,
        bottleneck: NodeId,
        ingress_delay: SimDuration,
        rng: StdRng,
    ) -> Self {
        let arrivals = Exponential::with_rate(cfg.arrival_rate());
        let surge_gap = Exponential::with_mean(cfg.surge_mean_gap_secs);
        let sizes =
            Pareto::new(cfg.pareto_scale_segments, cfg.pareto_shape).with_cap(cfg.cap_segments);
        Self {
            cfg,
            flow_base,
            next_flow: flow_base,
            bottleneck,
            ingress_delay,
            conns: HashMap::new(),
            arrivals,
            surge_gap,
            sizes,
            rng,
            stats: WebStats::default(),
            out: Vec::new(),
        }
    }

    /// Workload counters.
    pub fn stats(&self) -> WebStats {
        self.stats
    }

    /// Currently active transfers.
    pub fn active(&self) -> usize {
        self.conns.len()
    }

    fn start_transfer(&mut self, segments: u64, surge: bool, ctx: &mut Context<'_>) {
        if self.conns.len() >= self.cfg.max_concurrent {
            self.stats.transfers_skipped += 1;
            return;
        }
        let flow_raw = self.next_flow;
        self.next_flow = self.next_flow.wrapping_add(1);
        if self.next_flow < self.flow_base {
            self.next_flow = self.flow_base; // wrapped around u32 space
        }
        let tcp = TcpConfig {
            total_segments: Some(segments.max(1)),
            ..self.cfg.tcp
        };
        let mut conn = SenderConn::new(tcp);
        conn.open(ctx.now(), &mut self.out);
        self.conns.insert(flow_raw, conn);
        if surge {
            self.stats.surge_transfers_started += 1;
        } else {
            self.stats.transfers_started += 1;
        }
        self.pump(flow_raw, ctx);
    }

    fn pump(&mut self, flow_raw: u32, ctx: &mut Context<'_>) {
        let Some(conn) = self.conns.get(&flow_raw) else {
            self.out.clear();
            return;
        };
        let mss = conn.config().mss_bytes;
        let mut completed = false;
        for ev in self.out.drain(..) {
            match ev {
                SenderOut::Send { seq, .. } => {
                    let pkt = Packet {
                        id: ctx.next_packet_id(),
                        flow: FlowId(flow_raw),
                        size: mss,
                        created: ctx.now(),
                        kind: PacketKind::TcpData { seq, len: mss },
                    };
                    ctx.send(self.bottleneck, pkt, self.ingress_delay);
                }
                SenderOut::ArmRto { gen, at } => {
                    ctx.set_timer_at(at.max(ctx.now()), rto_token(flow_raw, gen));
                }
                SenderOut::Completed => completed = true,
            }
        }
        if completed {
            self.conns.remove(&flow_raw);
            self.stats.transfers_completed += 1;
        }
    }
}

impl Node for WebSessionGenerator {
    fn start(&mut self, ctx: &mut Context<'_>) {
        let first = self.arrivals.sample(&mut self.rng);
        ctx.set_timer(SimDuration::from_secs_f64(first), TOKEN_ARRIVAL);
        let surge = self.surge_gap.sample(&mut self.rng);
        ctx.set_timer(SimDuration::from_secs_f64(surge), TOKEN_SURGE);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let PacketKind::TcpAck { ack } = packet.kind else {
            return;
        };
        let flow_raw = packet.flow.0;
        if let Some(conn) = self.conns.get_mut(&flow_raw) {
            conn.on_ack(ack, ctx.now(), &mut self.out);
            self.pump(flow_raw, ctx);
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        match token {
            TOKEN_ARRIVAL => {
                let segments = self.sizes.sample(&mut self.rng).round() as u64;
                self.start_transfer(segments, false, ctx);
                let next = self.arrivals.sample(&mut self.rng);
                ctx.set_timer(SimDuration::from_secs_f64(next), TOKEN_ARRIVAL);
            }
            TOKEN_SURGE => {
                self.stats.surges += 1;
                for _ in 0..self.cfg.surge_transfers {
                    let segs = self.cfg.surge_segments;
                    self.start_transfer(segs, true, ctx);
                }
                let next = self.surge_gap.sample(&mut self.rng);
                ctx.set_timer(SimDuration::from_secs_f64(next), TOKEN_SURGE);
            }
            rto => {
                let flow_raw = (rto >> 32) as u32;
                let gen = rto & 0xFFFF_FFFF;
                if let Some(conn) = self.conns.get_mut(&flow_raw) {
                    conn.on_rto(gen, ctx.now(), &mut self.out);
                    self.pump(flow_raw, ctx);
                }
            }
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The server side: one receiver per active flow, ACKing straight back to
/// the generator over the reverse path.
pub struct WebSinkNode {
    generator: NodeId,
    reverse_delay: SimDuration,
    ack_bytes: u32,
    receivers: HashMap<u32, ReceiverConn>,
    segments_received: u64,
}

impl WebSinkNode {
    /// Create a sink whose ACKs return to `generator` after
    /// `reverse_delay`.
    pub fn new(generator: NodeId, reverse_delay: SimDuration, ack_bytes: u32) -> Self {
        Self {
            generator,
            reverse_delay,
            ack_bytes,
            receivers: HashMap::new(),
            segments_received: 0,
        }
    }

    /// Total data segments received across all flows.
    pub fn segments_received(&self) -> u64 {
        self.segments_received
    }
}

impl Node for WebSinkNode {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        let PacketKind::TcpData { seq, .. } = packet.kind else {
            return;
        };
        self.segments_received += 1;
        let rcv = self.receivers.entry(packet.flow.0).or_default();
        let ack = rcv.on_data(seq);
        let pkt = Packet {
            id: ctx.next_packet_id(),
            flow: packet.flow,
            size: self.ack_bytes,
            created: ctx.now(),
            kind: PacketKind::TcpAck { ack },
        };
        ctx.send(self.generator, pkt, self.reverse_delay);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Attach the web workload to a dumbbell: creates the generator and sink,
/// wires the default route, and returns `(generator_id, sink_id)`.
pub fn attach_web(
    db: &mut badabing_sim::topology::Dumbbell,
    cfg: WebConfig,
    flow_base: u32,
    rng: StdRng,
) -> (NodeId, NodeId) {
    let bottleneck = db.bottleneck();
    let ingress = db.ingress_delay();
    let reverse = db.config().reverse_delay;
    let ack_bytes = cfg.tcp.ack_bytes;
    let generator = db.add_node(Box::new(WebSessionGenerator::new(
        cfg, flow_base, bottleneck, ingress, rng,
    )));
    let sink = db.add_node(Box::new(WebSinkNode::new(generator, reverse, ack_bytes)));
    db.route_default(sink);
    (generator, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_sim::topology::Dumbbell;
    use badabing_stats::rng::seeded;

    #[test]
    fn arrival_rate_matches_utilization_target() {
        let cfg = WebConfig::paper_default();
        // mean = 1.2*20/0.2 = 120 segments = 1.44 Mb.
        assert!((cfg.mean_segments() - 120.0).abs() < 1e-9);
        let lambda = cfg.arrival_rate();
        let offered = lambda * cfg.mean_segments() * 1500.0 * 8.0;
        assert!(
            (offered / 155_520_000.0 - 0.5).abs() < 1e-9,
            "offered {offered}"
        );
    }

    #[test]
    fn baseline_traffic_flows_and_completes() {
        let mut db = Dumbbell::standard();
        let cfg = WebConfig {
            surge_mean_gap_secs: 1e9, // effectively no surges
            ..WebConfig::paper_default()
        };
        let (gen_id, sink_id) = attach_web(&mut db, cfg, 1 << 16, seeded(11, "web"));
        db.run_for(30.0);
        let stats = db.sim.node::<WebSessionGenerator>(gen_id).stats();
        assert!(
            stats.transfers_started > 500,
            "started {}",
            stats.transfers_started
        );
        assert!(
            stats.transfers_completed > stats.transfers_started / 2,
            "completed {} of {}",
            stats.transfers_completed,
            stats.transfers_started
        );
        assert!(db.sim.node::<WebSinkNode>(sink_id).segments_received() > 10_000);
        assert_eq!(db.unrouted(), 0);
        // Utilization should be near the 50% target (wide tolerance: the
        // Pareto tail makes 30 s a short sample).
        let bytes = db.monitor().borrow().departs() * 1500;
        let util = bytes as f64 * 8.0 / (155_520_000.0 * 30.0);
        assert!((0.2..0.9).contains(&util), "utilization {util}");
    }

    #[test]
    fn surges_induce_loss_episodes() {
        let mut db = Dumbbell::standard();
        let cfg = WebConfig {
            surge_mean_gap_secs: 10.0,
            ..WebConfig::paper_default()
        };
        let (gen_id, _) = attach_web(&mut db, cfg, 1 << 16, seeded(23, "web-surge"));
        db.run_for(60.0);
        let stats = db.sim.node::<WebSessionGenerator>(gen_id).stats();
        assert!(stats.surges >= 3, "only {} surges", stats.surges);
        let gt = db.ground_truth(60.0);
        assert!(
            !gt.episodes.is_empty(),
            "surges produced no loss (drops={})",
            db.monitor().borrow().drops()
        );
        assert!(gt.frequency() > 0.0);
    }

    #[test]
    fn max_concurrent_is_enforced() {
        let mut db = Dumbbell::standard();
        let cfg = WebConfig {
            max_concurrent: 10,
            surge_transfers: 100,
            surge_mean_gap_secs: 1.0,
            ..WebConfig::paper_default()
        };
        let (gen_id, _) = attach_web(&mut db, cfg, 1 << 16, seeded(5, "web-cap"));
        db.run_for(10.0);
        let g = db.sim.node::<WebSessionGenerator>(gen_id);
        assert!(g.active() <= 10);
        assert!(g.stats().transfers_skipped > 0);
    }

    #[test]
    fn token_encoding_roundtrips() {
        let t = rto_token(0xABCD_1234, 77);
        assert_eq!((t >> 32) as u32, 0xABCD_1234);
        assert_eq!(t & 0xFFFF_FFFF, 77);
        assert_ne!(t, TOKEN_ARRIVAL);
        assert_ne!(t, TOKEN_SURGE);
    }
}
