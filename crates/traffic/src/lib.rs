//! Cross-traffic generators for the BADABING experiments.
//!
//! The paper evaluates against three traffic scenarios (§4, §6):
//!
//! 1. **Infinite TCP sources** — built directly from [`badabing_tcp`]
//!    (`attach_flow` with an unbounded transfer); no extra machinery here.
//! 2. **Constant-bit-rate loss episodes** — Iperf was used to create
//!    approximately constant-duration loss episodes spaced at exponential
//!    intervals. [`cbr::CbrEpisodeSource`] reproduces the mechanism: a UDP
//!    blaster that overdrives the bottleneck for a calibrated on-time so
//!    that drops occur for the desired episode length.
//! 3. **Harpoon web-like traffic** — Poisson session arrivals with
//!    heavy-tailed (Pareto) transfer sizes over TCP, plus periodic load
//!    surges that induce loss roughly every 20 seconds.
//!    [`web::WebSessionGenerator`] multiplexes the finite TCP transfers of
//!    that workload inside a single simulation node.

pub mod cbr;
pub mod onoff;
pub mod web;

pub use cbr::{CbrEpisodeConfig, CbrEpisodeSource, EpisodeLengths};
pub use onoff::{OnOffConfig, OnOffSource};
pub use web::{WebConfig, WebSessionGenerator, WebSinkNode};
