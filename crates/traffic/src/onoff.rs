//! ON/OFF renewal sources.
//!
//! The paper's introduction grounds the inevitability of loss in "the
//! intrinsic dynamics and scaling properties of traffic" (Leland et al.'s
//! self-similarity result, \[19\]). The classic generative model for that
//! scaling is an aggregate of ON/OFF sources with heavy-tailed ON
//! periods: each source blasts at a fixed rate during Pareto-distributed
//! ON times and is silent for exponentially distributed OFF times. A few
//! dozen such sources superposed produce burstiness at many time scales —
//! a harsher, less scripted loss process than the CBR scenario, used by
//! the `ablation_onoff` robustness experiment.

use badabing_sim::node::{Context, Node, NodeId};
use badabing_sim::packet::{FlowId, Packet, PacketKind};
use badabing_sim::time::{SimDuration, SimTime};
use badabing_stats::dist::{Exponential, Pareto, Sample};
use rand::rngs::StdRng;
use std::any::Any;

/// Configuration of one ON/OFF source.
#[derive(Debug, Clone)]
pub struct OnOffConfig {
    /// Sending rate during ON periods, bits/second.
    pub on_rate_bps: u64,
    /// Packet size in bytes.
    pub packet_bytes: u32,
    /// ON durations: Pareto (heavy-tailed) in seconds.
    pub on_secs: Pareto,
    /// OFF durations: exponential mean in seconds.
    pub off_mean_secs: f64,
}

impl OnOffConfig {
    /// A source whose ON/OFF duty cycle carries `mean_rate_bps` on
    /// average: ON at `peak_factor ×` that rate for Pareto(α=1.5) bursts
    /// with the given mean, OFF sized to match.
    ///
    /// # Panics
    /// Panics unless `peak_factor > 1`.
    pub fn with_mean_rate(mean_rate_bps: u64, peak_factor: f64, mean_on_secs: f64) -> Self {
        assert!(peak_factor > 1.0, "peak factor must exceed 1");
        let alpha = 1.5;
        let xm = mean_on_secs * (alpha - 1.0) / alpha;
        // duty = mean_on / (mean_on + mean_off) = 1/peak_factor.
        let off_mean_secs = mean_on_secs * (peak_factor - 1.0);
        Self {
            on_rate_bps: (mean_rate_bps as f64 * peak_factor) as u64,
            packet_bytes: 1500,
            on_secs: Pareto::new(xm, alpha).with_cap(mean_on_secs * 50.0),
            off_mean_secs,
        }
    }

    /// Long-run average rate in bits/second.
    pub fn mean_rate_bps(&self) -> f64 {
        let on = self
            .on_secs
            .mean()
            .expect("capped Pareto has a finite mean");
        self.on_rate_bps as f64 * on / (on + self.off_mean_secs)
    }

    fn packet_spacing(&self) -> SimDuration {
        let pps = self.on_rate_bps as f64 / (f64::from(self.packet_bytes) * 8.0);
        SimDuration::from_secs_f64(1.0 / pps)
    }
}

const TOKEN_TOGGLE: u64 = 0;
const TOKEN_PKT: u64 = 1;

/// One ON/OFF source as a simulation node.
pub struct OnOffSource {
    cfg: OnOffConfig,
    flow: FlowId,
    dst: NodeId,
    ingress_delay: SimDuration,
    off: Exponential,
    rng: StdRng,
    on_until: SimTime,
    seq: u64,
    bursts: u64,
}

impl OnOffSource {
    /// Create a source for `flow` feeding `dst`.
    pub fn new(
        cfg: OnOffConfig,
        flow: FlowId,
        dst: NodeId,
        ingress_delay: SimDuration,
        rng: StdRng,
    ) -> Self {
        let off = Exponential::with_mean(cfg.off_mean_secs);
        Self {
            cfg,
            flow,
            dst,
            ingress_delay,
            off,
            rng,
            on_until: SimTime::ZERO,
            seq: 0,
            bursts: 0,
        }
    }

    /// ON periods started so far.
    pub fn bursts(&self) -> u64 {
        self.bursts
    }

    /// Packets sent so far.
    pub fn packets_sent(&self) -> u64 {
        self.seq
    }

    fn send_packet(&mut self, ctx: &mut Context<'_>) {
        let pkt = Packet {
            id: ctx.next_packet_id(),
            flow: self.flow,
            size: self.cfg.packet_bytes,
            created: ctx.now(),
            kind: PacketKind::Udp { seq: self.seq },
        };
        self.seq += 1;
        ctx.send(self.dst, pkt, self.ingress_delay);
    }
}

impl Node for OnOffSource {
    fn start(&mut self, ctx: &mut Context<'_>) {
        // Start in OFF, de-phasing the aggregate.
        let first = self.off.sample(&mut self.rng);
        ctx.set_timer(SimDuration::from_secs_f64(first), TOKEN_TOGGLE);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        match token {
            TOKEN_TOGGLE => {
                self.bursts += 1;
                let on = self.cfg.on_secs.sample(&mut self.rng);
                self.on_until = ctx.now() + SimDuration::from_secs_f64(on);
                self.send_packet(ctx);
                ctx.set_timer(self.cfg.packet_spacing(), TOKEN_PKT);
            }
            TOKEN_PKT => {
                if ctx.now() < self.on_until {
                    self.send_packet(ctx);
                    ctx.set_timer(self.cfg.packet_spacing(), TOKEN_PKT);
                } else {
                    let off = self.off.sample(&mut self.rng);
                    ctx.set_timer(SimDuration::from_secs_f64(off), TOKEN_TOGGLE);
                }
            }
            other => unreachable!("unknown timer token {other}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Attach `n` ON/OFF sources sized so the aggregate carries
/// `target_util × bottleneck_rate` on average. Returns the source node
/// ids; all flows route to one counting sink.
pub fn attach_onoff_aggregate(
    db: &mut badabing_sim::topology::Dumbbell,
    n: u32,
    target_util: f64,
    peak_factor: f64,
    mean_on_secs: f64,
    flow_base: u32,
    seed: u64,
) -> Vec<NodeId> {
    assert!(
        n > 0 && target_util > 0.0,
        "need sources and positive utilization"
    );
    let per_source = (target_util * db.config().bottleneck_rate_bps as f64 / f64::from(n)) as u64;
    let cfg = OnOffConfig::with_mean_rate(per_source, peak_factor, mean_on_secs);
    let sink = db.add_node(Box::new(badabing_sim::node::CountingSink::new()));
    let bottleneck = db.bottleneck();
    let ingress = db.ingress_delay();
    (0..n)
        .map(|i| {
            let flow = FlowId(flow_base + i);
            db.route_flow(flow, sink);
            db.add_node(Box::new(OnOffSource::new(
                cfg.clone(),
                flow,
                bottleneck,
                ingress,
                badabing_stats::rng::seeded(seed, &format!("onoff-{i}")),
            )))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_sim::topology::Dumbbell;
    use badabing_stats::rng::seeded;

    #[test]
    fn mean_rate_accounting() {
        let cfg = OnOffConfig::with_mean_rate(10_000_000, 4.0, 0.5);
        // Peak 40 Mb/s with a 25% duty cycle → 10 Mb/s mean.
        assert_eq!(cfg.on_rate_bps, 40_000_000);
        let mean = cfg.mean_rate_bps();
        assert!(
            (mean - 10_000_000.0).abs() / 10_000_000.0 < 0.01,
            "mean rate {mean}"
        );
    }

    #[test]
    fn single_source_alternates_and_respects_rate() {
        let mut db = Dumbbell::standard();
        let cfg = OnOffConfig::with_mean_rate(20_000_000, 5.0, 0.2);
        let sink = db.add_node(Box::new(badabing_sim::node::CountingSink::new()));
        db.route_flow(FlowId(1), sink);
        let bottleneck = db.bottleneck();
        let ingress = db.ingress_delay();
        let src = db.add_node(Box::new(OnOffSource::new(
            cfg,
            FlowId(1),
            bottleneck,
            ingress,
            seeded(3, "onoff"),
        )));
        db.run_for(120.0);
        let node = db.sim.node::<OnOffSource>(src);
        assert!(node.bursts() > 20, "bursts: {}", node.bursts());
        let sent_bits = node.packets_sent() as f64 * 1500.0 * 8.0;
        let mean = sent_bits / 120.0;
        assert!(
            (mean - 20e6).abs() / 20e6 < 0.35,
            "long-run rate {mean} vs target 20 Mb/s"
        );
    }

    #[test]
    fn aggregate_hits_utilization_target_and_bursts() {
        let mut db = Dumbbell::standard();
        attach_onoff_aggregate(&mut db, 24, 0.7, 6.0, 0.4, 100, 9);
        db.run_for(90.0);
        let bytes = db.monitor().borrow().departs() * 1500;
        let util = bytes as f64 * 8.0 / (155_520_000.0 * 90.0);
        assert!((0.4..1.0).contains(&util), "utilization {util}");
        // Heavy-tailed ON superposition should occasionally congest.
        let gt = db.ground_truth(90.0);
        assert!(
            gt.qdelay.values().iter().any(|&v| v > 0.02),
            "aggregate never built 20 ms of queue"
        );
    }
}
