//! Constant-bit-rate loss-episode driver (the Iperf stand-in).
//!
//! The paper's second traffic scenario uses Iperf to create "a series of
//! (approximately) constant duration (about 68 milliseconds) loss episodes
//! that were spaced randomly at exponential intervals with mean of 10
//! seconds" (§4.2), later extended to episodes of 50/100/150 ms (§6.2).
//!
//! Mechanism: starting from an empty buffer of drain-time `Q` seconds, a
//! burst at `f × B_out` fills the queue in `Q / (f - 1)` seconds; drops
//! then occur for as long as the overdrive continues. To produce a loss
//! episode of length `L`, the source bursts for `Q / (f - 1) + L` seconds
//! and then goes silent until the next exponentially spaced episode.

use badabing_sim::node::{Context, Node, NodeId};
use badabing_sim::packet::{FlowId, Packet, PacketKind};
use badabing_sim::time::{SimDuration, SimTime};
use badabing_stats::dist::{Exponential, Sample};
use rand::rngs::StdRng;
use rand::RngExt;
use std::any::Any;

/// Episode-length policy.
#[derive(Debug, Clone)]
pub enum EpisodeLengths {
    /// Every episode has the same loss duration (seconds).
    Fixed(f64),
    /// Each episode's loss duration is drawn uniformly from this set
    /// (the paper's 50/100/150 ms scenario).
    Choice(Vec<f64>),
}

impl EpisodeLengths {
    fn draw(&self, rng: &mut StdRng) -> f64 {
        match self {
            EpisodeLengths::Fixed(l) => *l,
            EpisodeLengths::Choice(ls) => {
                assert!(!ls.is_empty(), "empty episode length set");
                ls[rng.random_range(0..ls.len())]
            }
        }
    }
}

/// Configuration for [`CbrEpisodeSource`].
#[derive(Debug, Clone)]
pub struct CbrEpisodeConfig {
    /// Mean gap between episodes in seconds (exponentially distributed,
    /// measured from the end of one burst to the start of the next).
    /// Paper: 10 s.
    pub mean_gap_secs: f64,
    /// Target loss duration per episode.
    pub lengths: EpisodeLengths,
    /// Burst rate as a multiple of the bottleneck rate (must be > 1).
    pub burst_factor: f64,
    /// UDP packet size in bytes.
    pub packet_bytes: u32,
    /// Bottleneck service rate (bits/s) — needed to calibrate the burst.
    pub bottleneck_rate_bps: u64,
    /// Bottleneck buffer drain time in seconds.
    pub buffer_secs: f64,
}

impl CbrEpisodeConfig {
    /// The paper's baseline scenario on the standard dumbbell: 68 ms
    /// episodes every 10 s on average.
    pub fn paper_default() -> Self {
        Self {
            mean_gap_secs: 10.0,
            lengths: EpisodeLengths::Fixed(0.068),
            // 2× overdrive → 50% of in-episode arrivals drop, matching the
            // single-packet-probe survival the paper measured (Figure 7).
            burst_factor: 2.0,
            packet_bytes: 1500,
            bottleneck_rate_bps: 155_520_000,
            buffer_secs: 0.1,
        }
    }

    /// Time from burst start until the buffer first overflows.
    pub fn fill_secs(&self) -> f64 {
        self.buffer_secs / (self.burst_factor - 1.0)
    }

    /// Total burst on-time needed for a loss episode of `loss_secs`.
    pub fn on_time_secs(&self, loss_secs: f64) -> f64 {
        self.fill_secs() + loss_secs
    }

    /// Inter-packet spacing during a burst.
    pub fn burst_spacing(&self) -> SimDuration {
        let pps = self.burst_factor * self.bottleneck_rate_bps as f64
            / (f64::from(self.packet_bytes) * 8.0);
        SimDuration::from_secs_f64(1.0 / pps)
    }
}

const TOKEN_NEXT_BURST: u64 = 0;
const TOKEN_BURST_PKT: u64 = 1;

/// A UDP source that manufactures loss episodes of known duration at
/// exponentially spaced times.
pub struct CbrEpisodeSource {
    cfg: CbrEpisodeConfig,
    flow: FlowId,
    bottleneck: NodeId,
    ingress_delay: SimDuration,
    gap: Exponential,
    rng: StdRng,
    burst_end: SimTime,
    seq: u64,
    episodes_started: u64,
    /// Scheduled episode loss-durations, for test introspection.
    scheduled: Vec<f64>,
}

impl CbrEpisodeSource {
    /// Create a source for `flow` feeding `bottleneck`.
    ///
    /// # Panics
    /// Panics if `burst_factor <= 1` (the burst must exceed the bottleneck
    /// rate to create loss).
    pub fn new(
        cfg: CbrEpisodeConfig,
        flow: FlowId,
        bottleneck: NodeId,
        ingress_delay: SimDuration,
        rng: StdRng,
    ) -> Self {
        assert!(cfg.burst_factor > 1.0, "burst factor must exceed 1");
        assert!(cfg.mean_gap_secs > 0.0, "mean gap must be positive");
        let gap = Exponential::with_mean(cfg.mean_gap_secs);
        Self {
            cfg,
            flow,
            bottleneck,
            ingress_delay,
            gap,
            rng,
            burst_end: SimTime::ZERO,
            seq: 0,
            episodes_started: 0,
            scheduled: Vec::new(),
        }
    }

    /// Number of episodes started so far.
    pub fn episodes_started(&self) -> u64 {
        self.episodes_started
    }

    /// The loss durations scheduled so far.
    pub fn scheduled_lengths(&self) -> &[f64] {
        &self.scheduled
    }

    fn send_packet(&mut self, ctx: &mut Context<'_>) {
        let pkt = Packet {
            id: ctx.next_packet_id(),
            flow: self.flow,
            size: self.cfg.packet_bytes,
            created: ctx.now(),
            kind: PacketKind::Udp { seq: self.seq },
        };
        self.seq += 1;
        ctx.send(self.bottleneck, pkt, self.ingress_delay);
    }
}

impl Node for CbrEpisodeSource {
    fn start(&mut self, ctx: &mut Context<'_>) {
        let first = self.gap.sample(&mut self.rng);
        ctx.set_timer(SimDuration::from_secs_f64(first), TOKEN_NEXT_BURST);
    }

    fn on_packet(&mut self, _packet: Packet, _ctx: &mut Context<'_>) {}

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        match token {
            TOKEN_NEXT_BURST => {
                let loss = self.cfg.lengths.draw(&mut self.rng);
                self.scheduled.push(loss);
                self.episodes_started += 1;
                self.burst_end =
                    ctx.now() + SimDuration::from_secs_f64(self.cfg.on_time_secs(loss));
                self.send_packet(ctx);
                ctx.set_timer(self.cfg.burst_spacing(), TOKEN_BURST_PKT);
            }
            TOKEN_BURST_PKT => {
                if ctx.now() < self.burst_end {
                    self.send_packet(ctx);
                    ctx.set_timer(self.cfg.burst_spacing(), TOKEN_BURST_PKT);
                } else {
                    let gap = self.gap.sample(&mut self.rng);
                    ctx.set_timer(SimDuration::from_secs_f64(gap), TOKEN_NEXT_BURST);
                }
            }
            other => unreachable!("unknown timer token {other}"),
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Attach a CBR episode source to a dumbbell; returns the source node id.
/// Departing packets for `flow` are routed to a counting sink.
pub fn attach_cbr(
    db: &mut badabing_sim::topology::Dumbbell,
    flow: FlowId,
    cfg: CbrEpisodeConfig,
    rng: StdRng,
) -> NodeId {
    let sink = db.add_node(Box::new(badabing_sim::node::CountingSink::new()));
    db.route_flow(flow, sink);
    let bottleneck = db.bottleneck();
    let ingress = db.ingress_delay();
    db.add_node(Box::new(CbrEpisodeSource::new(
        cfg, flow, bottleneck, ingress, rng,
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_sim::topology::Dumbbell;
    use badabing_stats::rng::seeded;

    #[test]
    fn calibration_math() {
        let cfg = CbrEpisodeConfig::paper_default();
        // 2× overdrive fills the 100 ms buffer in 100 ms.
        assert!((cfg.fill_secs() - 0.10).abs() < 1e-12);
        assert!((cfg.on_time_secs(0.068) - 0.168).abs() < 1e-12);
        // 2x OC3 with 1500B packets = 25 920 pps → ~38.6 µs spacing.
        let sp = cfg.burst_spacing().as_secs_f64();
        assert!((sp - 1.0 / 25_920.0).abs() < 1e-9, "spacing {sp}");
    }

    #[test]
    fn episodes_have_calibrated_duration() {
        let mut db = Dumbbell::standard();
        let cfg = CbrEpisodeConfig {
            mean_gap_secs: 5.0,
            ..CbrEpisodeConfig::paper_default()
        };
        let src = attach_cbr(&mut db, FlowId(1), cfg, seeded(42, "cbr"));
        db.run_for(60.0);
        let gt = db.ground_truth(60.0);
        let started = db.sim.node::<CbrEpisodeSource>(src).episodes_started();
        assert!(
            started >= 5,
            "only {started} episodes in 60s with mean gap 5s"
        );
        // Every burst that finished must have produced one loss episode.
        assert!(
            (gt.episodes.len() as i64 - started as i64).abs() <= 1,
            "bursts {} vs episodes {}",
            started,
            gt.episodes.len()
        );
        // Mean measured loss duration ≈ 68 ms (within a slot or two).
        let d = gt.mean_duration_secs();
        assert!((d - 0.068).abs() < 0.015, "mean episode duration {d}");
    }

    #[test]
    fn choice_lengths_are_all_used() {
        let mut db = Dumbbell::standard();
        let cfg = CbrEpisodeConfig {
            mean_gap_secs: 2.0,
            lengths: EpisodeLengths::Choice(vec![0.05, 0.10, 0.15]),
            ..CbrEpisodeConfig::paper_default()
        };
        let src = attach_cbr(&mut db, FlowId(1), cfg, seeded(7, "cbr-choice"));
        db.run_for(120.0);
        let lengths = db
            .sim
            .node::<CbrEpisodeSource>(src)
            .scheduled_lengths()
            .to_vec();
        assert!(lengths.len() > 20);
        for want in [0.05, 0.10, 0.15] {
            assert!(
                lengths.iter().any(|&l| (l - want).abs() < 1e-12),
                "length {want} never drawn"
            );
        }
    }

    #[test]
    fn quiet_between_bursts() {
        // With a huge mean gap the source should emit nothing for a while.
        let mut db = Dumbbell::standard();
        let cfg = CbrEpisodeConfig {
            mean_gap_secs: 1_000_000.0,
            ..CbrEpisodeConfig::paper_default()
        };
        attach_cbr(&mut db, FlowId(1), cfg, seeded(1, "cbr-quiet"));
        db.run_for(5.0);
        assert_eq!(db.monitor().borrow().enqueues(), 0);
    }

    #[test]
    #[should_panic(expected = "burst factor")]
    fn rejects_subcapacity_burst() {
        let cfg = CbrEpisodeConfig {
            burst_factor: 0.9,
            ..CbrEpisodeConfig::paper_default()
        };
        let _ = CbrEpisodeSource::new(cfg, FlowId(1), NodeId(0), SimDuration::ZERO, seeded(0, "x"));
    }
}
