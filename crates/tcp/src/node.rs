//! Simulator adapters for the TCP state machines.
//!
//! [`TcpFlowNode`] runs one sender as a simulation node (used for the 40
//! infinite sources of Figure 4 / Table 1); [`TcpSinkNode`] is the matching
//! receiver. ACKs travel on the reverse path, which in the testbed is
//! uncongested, so the sink sends them straight back to the sender node
//! after the reverse propagation delay.

use crate::conn::{ReceiverConn, SenderConn, SenderOut, TcpConfig};
use badabing_sim::node::{Context, Node, NodeId};
use badabing_sim::packet::{FlowId, Packet, PacketKind};
use badabing_sim::time::{SimDuration, SimTime};
use std::any::Any;

/// A single TCP sender attached to the dumbbell.
pub struct TcpFlowNode {
    conn: SenderConn,
    flow: FlowId,
    bottleneck: NodeId,
    ingress_delay: SimDuration,
    /// Optional stagger: the connection opens at this time instead of t=0,
    /// so the 40 infinite sources don't start in lockstep.
    start_at: SimTime,
    completed_at: Option<SimTime>,
    out: Vec<SenderOut>,
}

const TOKEN_OPEN: u64 = u64::MAX;

impl TcpFlowNode {
    /// Create a sender for `flow` that transmits into `bottleneck` after
    /// `ingress_delay`, opening at `start_at`.
    pub fn new(
        cfg: TcpConfig,
        flow: FlowId,
        bottleneck: NodeId,
        ingress_delay: SimDuration,
        start_at: SimTime,
    ) -> Self {
        Self {
            conn: SenderConn::new(cfg),
            flow,
            bottleneck,
            ingress_delay,
            start_at,
            completed_at: None,
            out: Vec::new(),
        }
    }

    /// Access the underlying state machine (for assertions and reporting).
    pub fn conn(&self) -> &SenderConn {
        &self.conn
    }

    /// When a finite transfer completed, if it has.
    pub fn completed_at(&self) -> Option<SimTime> {
        self.completed_at
    }

    fn pump(&mut self, ctx: &mut Context<'_>) {
        let mss = self.conn.config().mss_bytes;
        // `out` is drained into simulator actions. Note: RTO timer tokens
        // carry the generation number directly; stale generations are
        // filtered by the state machine.
        for ev in self.out.drain(..) {
            match ev {
                SenderOut::Send { seq, .. } => {
                    let pkt = Packet {
                        id: ctx.next_packet_id(),
                        flow: self.flow,
                        size: mss,
                        created: ctx.now(),
                        kind: PacketKind::TcpData { seq, len: mss },
                    };
                    ctx.send(self.bottleneck, pkt, self.ingress_delay);
                }
                SenderOut::ArmRto { gen, at } => {
                    debug_assert_ne!(gen, TOKEN_OPEN, "rto generation collided with open token");
                    let at = at.max(ctx.now());
                    ctx.set_timer_at(at, gen);
                }
                SenderOut::Completed => {
                    self.completed_at = Some(ctx.now());
                }
            }
        }
    }
}

impl Node for TcpFlowNode {
    fn start(&mut self, ctx: &mut Context<'_>) {
        ctx.set_timer_at(self.start_at.max(ctx.now()), TOKEN_OPEN);
    }

    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        match packet.kind {
            PacketKind::TcpAck { ack } => {
                self.conn.on_ack(ack, ctx.now(), &mut self.out);
                self.pump(ctx);
            }
            PacketKind::TcpSack {
                ack,
                blocks,
                n_blocks,
            } => {
                self.conn.on_ack_sack(
                    ack,
                    &blocks[..usize::from(n_blocks)],
                    ctx.now(),
                    &mut self.out,
                );
                self.pump(ctx);
            }
            _ => {}
        }
    }

    fn on_timer(&mut self, token: u64, ctx: &mut Context<'_>) {
        if token == TOKEN_OPEN {
            self.conn.open(ctx.now(), &mut self.out);
        } else {
            self.conn.on_rto(token, ctx.now(), &mut self.out);
        }
        self.pump(ctx);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// The matching receiver: ACKs go straight back to the sender node over the
/// (uncongested) reverse path.
pub struct TcpSinkNode {
    conn: ReceiverConn,
    flow: FlowId,
    sender: NodeId,
    reverse_delay: SimDuration,
    ack_bytes: u32,
    sack: bool,
}

impl TcpSinkNode {
    /// Create a sink for `flow` whose ACKs return to `sender` after
    /// `reverse_delay`. With `sack`, ACKs carry RFC 2018 blocks.
    pub fn new(
        flow: FlowId,
        sender: NodeId,
        reverse_delay: SimDuration,
        ack_bytes: u32,
        sack: bool,
    ) -> Self {
        Self {
            conn: ReceiverConn::new(),
            flow,
            sender,
            reverse_delay,
            ack_bytes,
            sack,
        }
    }

    /// Access the underlying receiver state.
    pub fn conn(&self) -> &ReceiverConn {
        &self.conn
    }
}

impl Node for TcpSinkNode {
    fn on_packet(&mut self, packet: Packet, ctx: &mut Context<'_>) {
        if let PacketKind::TcpData { seq, .. } = packet.kind {
            let ack = self.conn.on_data(seq);
            let kind = if self.sack {
                let (blocks, n_blocks) = self.conn.sack_blocks();
                PacketKind::TcpSack {
                    ack,
                    blocks,
                    n_blocks,
                }
            } else {
                PacketKind::TcpAck { ack }
            };
            let pkt = Packet {
                id: ctx.next_packet_id(),
                flow: self.flow,
                size: self.ack_bytes,
                created: ctx.now(),
                kind,
            };
            ctx.send(self.sender, pkt, self.reverse_delay);
        }
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// Attach a full TCP connection (sender + receiver) for `flow` to a
/// dumbbell, returning `(sender_id, sink_id)`.
pub fn attach_flow(
    db: &mut badabing_sim::topology::Dumbbell,
    flow: FlowId,
    cfg: TcpConfig,
    start_at: SimTime,
) -> (NodeId, NodeId) {
    let bottleneck = db.bottleneck();
    let ingress = db.ingress_delay();
    let reverse = db.config().reverse_delay;
    let sender = db.add_node(Box::new(TcpFlowNode::new(
        cfg, flow, bottleneck, ingress, start_at,
    )));
    let sink = db.add_node(Box::new(TcpSinkNode::new(
        flow,
        sender,
        reverse,
        cfg.ack_bytes,
        cfg.sack,
    )));
    db.route_flow(flow, sink);
    (sender, sink)
}

#[cfg(test)]
mod tests {
    use super::*;
    use badabing_sim::topology::Dumbbell;

    #[test]
    fn single_flow_is_rwnd_limited_and_lossless() {
        // One flow with rwnd = 256 segments over a ~100 ms RTT can carry at
        // most ~30 Mb/s — far below OC3 — so it must not lose anything.
        let mut db = Dumbbell::standard();
        let cfg = TcpConfig::default();
        let (sender, sink) = attach_flow(&mut db, FlowId(1), cfg, SimTime::ZERO);
        db.run_for(30.0);
        let drops = db.monitor().borrow().drops();
        assert_eq!(
            drops, 0,
            "rwnd-limited flow should not overflow a 1.9MB buffer"
        );
        let received = db.sim.node::<TcpSinkNode>(sink).conn().received();
        // Theoretical ceiling: 256 segments per RTT (~0.1001 s) for ~30 s.
        let ceiling = (30.0 / 0.1001 * 256.0) as u64;
        assert!(
            received > ceiling / 2,
            "moved {received} segments, expected near {ceiling}"
        );
        assert!(received <= ceiling + 256);
        assert_eq!(db.sim.node::<TcpFlowNode>(sender).conn().retransmits(), 0);
    }

    #[test]
    fn finite_transfer_completes_through_dumbbell() {
        let mut db = Dumbbell::standard();
        let cfg = TcpConfig {
            total_segments: Some(500),
            ..Default::default()
        };
        let (sender, sink) = attach_flow(&mut db, FlowId(1), cfg, SimTime::ZERO);
        db.run_for(60.0);
        let s = db.sim.node::<TcpFlowNode>(sender);
        assert!(s.conn().is_completed(), "transfer should finish in 60s");
        assert!(s.completed_at().is_some());
        assert_eq!(db.sim.node::<TcpSinkNode>(sink).conn().received(), 500);
    }

    #[test]
    fn many_flows_saturate_and_lose() {
        // 40 infinite sources overwhelm OC3 (aggregate rwnd ceiling is
        // ~8x the pipe+buffer), so the queue must overflow repeatedly.
        let mut db = Dumbbell::standard();
        for f in 0..40u32 {
            // Stagger starts over the first 2 seconds.
            let start = SimTime::from_secs_f64(f as f64 * 0.05);
            attach_flow(&mut db, FlowId(f), TcpConfig::default(), start);
        }
        db.run_for(30.0);
        let m = db.monitor();
        assert!(
            m.borrow().drops() > 0,
            "expected loss under 40 infinite sources"
        );
        let gt = db.ground_truth(30.0);
        assert!(!gt.episodes.is_empty());
        assert!(gt.frequency() > 0.0);
        // Utilization sanity: the bottleneck should be busy most of the time.
        let departed_bytes: u64 = m.borrow().departs() * 1500;
        let utilization = departed_bytes as f64 * 8.0 / (155_520_000.0 * 30.0);
        assert!(utilization > 0.5, "utilization only {utilization:.2}");
    }

    #[test]
    fn staggered_start_delays_opening() {
        let mut db = Dumbbell::standard();
        let cfg = TcpConfig {
            total_segments: Some(10),
            ..Default::default()
        };
        let (sender, _) = attach_flow(&mut db, FlowId(1), cfg, SimTime::from_secs_f64(5.0));
        db.run_for(4.9);
        assert_eq!(db.sim.node::<TcpFlowNode>(sender).conn().segments_sent(), 0);
        db.run_for(20.0);
        assert!(db.sim.node::<TcpFlowNode>(sender).conn().is_completed());
    }
}
