//! Reno-style TCP for the BADABING reproduction.
//!
//! The paper's cross traffic is dominated by TCP: 40 *infinite* sources
//! create the sawtooth queue dynamics of Figure 4 / Table 1, and the
//! Harpoon-like web workload (Figure 6 / Tables 3 and 6) is thousands of
//! *finite* TCP transfers with heavy-tailed sizes. What matters for the
//! study is TCP's reactive congestion behaviour — windows grow until the
//! drop-tail buffer overflows, losses synchronize multiplicative decreases,
//! the queue drains, and the cycle repeats — so this crate implements a
//! faithful Reno/NewReno sender (slow start, congestion avoidance, fast
//! retransmit, fast recovery with partial-ACK retransmission, RTO with
//! exponential backoff and Karn's rule) rather than a full socket API.
//!
//! The protocol logic is *sans-IO*: [`conn::SenderConn`] and
//! [`conn::ReceiverConn`] are pure state machines that emit actions, and
//! [`node::TcpFlowNode`] / [`node::TcpSinkNode`] adapt them to the
//! simulator. This keeps the state machines unit-testable in isolation and
//! lets the web-traffic generator multiplex many connections inside a
//! single node.
//!
//! Sequence numbers are in MSS-sized segments, not bytes: every data packet
//! in the experiments is a full-sized 1500-byte frame (the paper's infinite
//! sources use "256 full size (1500 bytes) packets" receive windows), so
//! byte granularity would add bookkeeping without changing any behaviour.

pub mod conn;
pub mod node;

pub use conn::{ReceiverConn, SenderConn, SenderOut, TcpConfig};
pub use node::{TcpFlowNode, TcpSinkNode};
