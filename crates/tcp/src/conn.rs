//! Sans-IO Reno/NewReno sender and receiver state machines.
//!
//! Sequence numbers count MSS-sized segments. The sender emits
//! [`SenderOut`] actions; the embedding node (or a test harness) turns them
//! into packets and timers. Nothing here knows about the simulator.

use badabing_sim::time::SimTime;

/// Static configuration of a connection.
#[derive(Debug, Clone, Copy)]
pub struct TcpConfig {
    /// Wire size of a full data segment in bytes (occupies queue space and
    /// serialization time). Default 1500.
    pub mss_bytes: u32,
    /// Wire size of a pure ACK in bytes. Default 40.
    pub ack_bytes: u32,
    /// Receiver window in segments. Default 256 (the paper's setting).
    pub rwnd_segments: u64,
    /// Initial congestion window in segments. Default 2.
    pub init_cwnd: f64,
    /// Initial slow-start threshold in segments. Default = rwnd.
    pub init_ssthresh: f64,
    /// Minimum retransmission timeout in seconds. Default 0.2 (Linux 2.4's
    /// 200 ms floor, matching the testbed end hosts).
    pub min_rto_secs: f64,
    /// Maximum retransmission timeout in seconds. Default 60.
    pub max_rto_secs: f64,
    /// Total segments to transfer; `None` means an infinite source.
    pub total_segments: Option<u64>,
    /// Use SACK-based loss recovery (RFC 2018/3517-style scoreboard)
    /// instead of Reno/NewReno. The testbed's Linux 2.4 stack negotiated
    /// SACK; the difference matters under multi-loss windows, where Reno
    /// serializes retransmissions (one hole per RTT via partial ACKs,
    /// often collapsing into an RTO) while SACK repairs the whole window
    /// in about one RTT.
    pub sack: bool,
}

impl Default for TcpConfig {
    fn default() -> Self {
        Self {
            mss_bytes: 1500,
            ack_bytes: 40,
            rwnd_segments: 256,
            init_cwnd: 2.0,
            init_ssthresh: 256.0,
            min_rto_secs: 0.2,
            max_rto_secs: 60.0,
            total_segments: None,
            sack: false,
        }
    }
}

/// Actions emitted by the sender state machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SenderOut {
    /// Transmit the segment with this sequence number.
    Send {
        /// Segment index.
        seq: u64,
        /// Whether this is a retransmission (Karn: no RTT sample).
        rtx: bool,
    },
    /// (Re)arm the retransmission timer: fire at `at` carrying `gen`; any
    /// previously armed timer with an older generation must be ignored
    /// when it fires.
    ArmRto {
        /// Generation tag to deliver back to [`SenderConn::on_rto`].
        gen: u64,
        /// Absolute fire time.
        at: SimTime,
    },
    /// A finite transfer has been fully acknowledged.
    Completed,
}

/// RTT estimator state per RFC 6298 (with Karn's algorithm applied by the
/// caller: retransmitted segments never produce samples).
#[derive(Debug, Clone, Copy)]
struct RttEstimator {
    srtt: Option<f64>,
    rttvar: f64,
    rto: f64,
    min_rto: f64,
    max_rto: f64,
}

impl RttEstimator {
    fn new(min_rto: f64, max_rto: f64) -> Self {
        // Until the first sample, RFC 6298 says RTO = 1 s (clamped to floor).
        Self {
            srtt: None,
            rttvar: 0.0,
            rto: 1.0_f64.max(min_rto),
            min_rto,
            max_rto,
        }
    }

    fn sample(&mut self, rtt: f64) {
        match self.srtt {
            None => {
                self.srtt = Some(rtt);
                self.rttvar = rtt / 2.0;
            }
            Some(srtt) => {
                self.rttvar = 0.75 * self.rttvar + 0.25 * (srtt - rtt).abs();
                self.srtt = Some(0.875 * srtt + 0.125 * rtt);
            }
        }
        let srtt = self.srtt.expect("just set");
        self.rto = (srtt + (4.0 * self.rttvar).max(0.010)).clamp(self.min_rto, self.max_rto);
    }

    fn rto(&self) -> f64 {
        self.rto
    }
}

/// The Reno/NewReno sender.
#[derive(Debug, Clone)]
pub struct SenderConn {
    cfg: TcpConfig,
    /// Oldest unacknowledged segment.
    snd_una: u64,
    /// Next segment to send for the first time.
    snd_nxt: u64,
    cwnd: f64,
    ssthresh: f64,
    dupacks: u32,
    /// `Some(recover)` while in fast recovery; exit when `snd_una > recover`.
    recovery: Option<u64>,
    rtt: RttEstimator,
    backoff: u32,
    rto_gen: u64,
    rto_armed: bool,
    /// Send time of the current `snd_una` segment and whether it was ever
    /// retransmitted (for Karn's rule). Tracked per in-flight window head.
    una_sent_at: Option<(SimTime, bool)>,
    completed: bool,
    segments_sent: u64,
    retransmits: u64,
    timeouts: u64,
    /// SACK scoreboard: segments in `(snd_una, snd_nxt)` known delivered.
    sacked: std::collections::BTreeSet<u64>,
    /// Holes already retransmitted during the current SACK recovery.
    rtx_marked: std::collections::BTreeSet<u64>,
}

impl SenderConn {
    /// New sender; call [`Self::open`] to emit the initial window.
    pub fn new(cfg: TcpConfig) -> Self {
        let rtt = RttEstimator::new(cfg.min_rto_secs, cfg.max_rto_secs);
        Self {
            cfg,
            snd_una: 0,
            snd_nxt: 0,
            cwnd: cfg.init_cwnd,
            ssthresh: cfg.init_ssthresh,
            dupacks: 0,
            recovery: None,
            rtt,
            backoff: 0,
            rto_gen: 0,
            rto_armed: false,
            una_sent_at: None,
            completed: false,
            segments_sent: 0,
            retransmits: 0,
            timeouts: 0,
            sacked: std::collections::BTreeSet::new(),
            rtx_marked: std::collections::BTreeSet::new(),
        }
    }

    /// Configuration in use.
    pub fn config(&self) -> &TcpConfig {
        &self.cfg
    }

    /// Current congestion window in segments.
    pub fn cwnd(&self) -> f64 {
        self.cwnd
    }

    /// Current slow-start threshold in segments.
    pub fn ssthresh(&self) -> f64 {
        self.ssthresh
    }

    /// Whether a finite transfer has completed.
    pub fn is_completed(&self) -> bool {
        self.completed
    }

    /// Total segment transmissions (including retransmissions).
    pub fn segments_sent(&self) -> u64 {
        self.segments_sent
    }

    /// Total retransmissions.
    pub fn retransmits(&self) -> u64 {
        self.retransmits
    }

    /// Total RTO events.
    pub fn timeouts(&self) -> u64 {
        self.timeouts
    }

    /// Segments in flight.
    pub fn flight(&self) -> u64 {
        self.snd_nxt - self.snd_una
    }

    /// Begin transmission: emit the initial window.
    pub fn open(&mut self, now: SimTime, out: &mut Vec<SenderOut>) {
        self.fill_window(now, out);
    }

    fn effective_window(&self) -> u64 {
        (self.cwnd.floor() as u64)
            .max(1)
            .min(self.cfg.rwnd_segments)
    }

    fn send_limit(&self) -> u64 {
        let wnd_end = self.snd_una + self.effective_window();
        match self.cfg.total_segments {
            Some(total) => wnd_end.min(total),
            None => wnd_end,
        }
    }

    /// Emit new segments while the window allows.
    fn fill_window(&mut self, now: SimTime, out: &mut Vec<SenderOut>) {
        let mut sent_any = false;
        while self.snd_nxt < self.send_limit() {
            out.push(SenderOut::Send {
                seq: self.snd_nxt,
                rtx: false,
            });
            if self.snd_nxt == self.snd_una {
                self.una_sent_at = Some((now, false));
            }
            self.snd_nxt += 1;
            self.segments_sent += 1;
            sent_any = true;
        }
        if sent_any && !self.rto_armed && self.flight() > 0 {
            self.arm_rto(now, out);
        }
    }

    fn arm_rto(&mut self, now: SimTime, out: &mut Vec<SenderOut>) {
        self.rto_gen += 1;
        self.rto_armed = true;
        let rto = self.rtt.rto() * f64::from(1u32 << self.backoff.min(16));
        let rto = rto.min(self.cfg.max_rto_secs);
        out.push(SenderOut::ArmRto {
            gen: self.rto_gen,
            at: now + sim_dur(rto),
        });
    }

    /// Handle a cumulative acknowledgment: `ack` is the next segment the
    /// receiver expects.
    pub fn on_ack(&mut self, ack: u64, now: SimTime, out: &mut Vec<SenderOut>) {
        self.on_ack_sack(ack, &[], now, out);
    }

    /// Handle an acknowledgment carrying SACK blocks (`[start, end)`
    /// segment ranges above `ack`). With an empty block list this is the
    /// plain cumulative path; blocks are ignored unless the connection
    /// was configured with `sack: true`.
    pub fn on_ack_sack(
        &mut self,
        ack: u64,
        blocks: &[(u64, u64)],
        now: SimTime,
        out: &mut Vec<SenderOut>,
    ) {
        if self.completed {
            return;
        }
        if ack > self.snd_nxt {
            // Ack for data never sent — ignore (corrupted peer in tests).
            return;
        }
        if self.cfg.sack {
            self.sack_update(blocks);
        }
        if ack > self.snd_una {
            self.handle_new_ack(ack, now, out);
        } else if self.flight() > 0 {
            self.handle_dupack(now, out);
        }
        if let Some(total) = self.cfg.total_segments {
            if self.snd_una >= total && !self.completed {
                self.completed = true;
                self.rto_armed = false;
                self.rto_gen += 1; // invalidate any armed timer
                out.push(SenderOut::Completed);
                return;
            }
        }
        self.fill_window(now, out);
    }

    fn handle_new_ack(&mut self, ack: u64, now: SimTime, out: &mut Vec<SenderOut>) {
        let newly_acked = ack - self.snd_una;
        // RTT sample from the head of the window (Karn: skip if it was
        // retransmitted).
        if let Some((sent_at, rtx)) = self.una_sent_at.take() {
            if !rtx {
                self.rtt.sample(now.since(sent_at).as_secs_f64());
            }
        }
        self.backoff = 0;
        self.snd_una = ack;
        self.dupacks = 0;

        // Advance the scoreboard floor.
        if self.cfg.sack {
            self.sacked = self.sacked.split_off(&ack);
            self.rtx_marked = self.rtx_marked.split_off(&ack);
        }

        match self.recovery {
            Some(recover) if ack < recover && self.cfg.sack => {
                // SACK partial ACK: the scoreboard drives retransmission;
                // keep filling holes under the halved window.
                self.una_sent_at = Some((now, true));
                self.sack_fill(now, out);
            }
            Some(recover) if ack < recover => {
                // NewReno partial ACK: the next hole is lost too.
                // Retransmit it, deflate the window by the amount acked.
                out.push(SenderOut::Send {
                    seq: ack,
                    rtx: true,
                });
                self.retransmits += 1;
                self.una_sent_at = Some((now, true));
                self.cwnd = (self.cwnd - newly_acked as f64 + 1.0).max(1.0);
            }
            Some(_) => {
                // Full ACK: leave recovery.
                self.recovery = None;
                self.rtx_marked.clear();
                self.cwnd = self.ssthresh;
                self.una_sent_at = if self.flight() > 0 {
                    Some((now, false))
                } else {
                    None
                };
            }
            None => {
                // Normal window growth, once per ACK.
                if self.cwnd < self.ssthresh {
                    self.cwnd += newly_acked as f64; // slow start
                } else {
                    self.cwnd += 1.0 / self.cwnd; // congestion avoidance
                }
                self.una_sent_at = if self.flight() > 0 {
                    Some((now, false))
                } else {
                    None
                };
            }
        }

        // Restart the RTO for remaining in-flight data.
        if self.flight() > 0 {
            self.arm_rto(now, out);
        } else {
            self.rto_armed = false;
            self.rto_gen += 1;
        }
    }

    fn handle_dupack(&mut self, now: SimTime, out: &mut Vec<SenderOut>) {
        if self.cfg.sack {
            self.handle_dupack_sack(now, out);
            return;
        }
        if self.recovery.is_some() {
            // Window inflation: each further dupack signals a departure.
            self.cwnd += 1.0;
            return;
        }
        self.dupacks += 1;
        if self.dupacks == 3 {
            // Fast retransmit + fast recovery.
            self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
            self.recovery = Some(self.snd_nxt);
            self.cwnd = self.ssthresh + 3.0;
            out.push(SenderOut::Send {
                seq: self.snd_una,
                rtx: true,
            });
            self.retransmits += 1;
            self.una_sent_at = Some((now, true));
            self.arm_rto(now, out);
        }
    }

    // ---- SACK machinery (active only with `cfg.sack`) ----

    /// Merge reported blocks into the scoreboard.
    fn sack_update(&mut self, blocks: &[(u64, u64)]) {
        for &(start, end) in blocks {
            let lo = start.max(self.snd_una);
            let hi = end.min(self.snd_nxt);
            for seq in lo..hi {
                self.sacked.insert(seq);
            }
        }
    }

    fn handle_dupack_sack(&mut self, now: SimTime, out: &mut Vec<SenderOut>) {
        if self.recovery.is_some() {
            self.sack_fill(now, out);
            return;
        }
        self.dupacks += 1;
        // Enter recovery on the classic three duplicate ACKs, or as soon
        // as the scoreboard shows three segments delivered above a hole
        // (RFC 3517's loss-detection heuristic).
        if self.dupacks >= 3 || self.sacked.len() >= 3 {
            self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
            self.cwnd = self.ssthresh;
            self.recovery = Some(self.snd_nxt);
            self.rtx_marked.clear();
            self.sack_fill(now, out);
            self.arm_rto(now, out);
        }
    }

    /// RFC 3517's IsLost: a hole is presumed lost once three segments
    /// above it have been SACKed (or it is the window head after three
    /// duplicate ACKs).
    fn sack_is_lost(&self, seq: u64) -> bool {
        if seq == self.snd_una && self.dupacks >= 3 {
            return true;
        }
        self.sacked.range(seq + 1..).count() >= 3
    }

    /// Estimated segments actually in the pipe during SACK recovery:
    /// everything outstanding, minus what the scoreboard says arrived,
    /// minus the holes presumed lost that we have not yet retransmitted.
    fn sack_pipe(&self) -> u64 {
        let recover = self.recovery.unwrap_or(self.snd_una);
        let lost_not_rtx = (self.snd_una..recover)
            .filter(|&s| {
                !self.sacked.contains(&s) && !self.rtx_marked.contains(&s) && self.sack_is_lost(s)
            })
            .count() as u64;
        self.flight()
            .saturating_sub(self.sacked.len() as u64 + lost_not_rtx)
    }

    /// Retransmit presumed-lost holes (lowest first), then send new data,
    /// while the pipe estimate stays under the window.
    fn sack_fill(&mut self, now: SimTime, out: &mut Vec<SenderOut>) {
        let recover = match self.recovery {
            Some(r) => r,
            None => return,
        };
        let wnd = self.effective_window();
        while self.sack_pipe() < wnd {
            let hole = (self.snd_una..recover).find(|&s| {
                !self.sacked.contains(&s) && !self.rtx_marked.contains(&s) && self.sack_is_lost(s)
            });
            match hole {
                Some(seq) => {
                    out.push(SenderOut::Send { seq, rtx: true });
                    self.rtx_marked.insert(seq);
                    self.segments_sent += 1;
                    self.retransmits += 1;
                    if seq == self.snd_una {
                        self.una_sent_at = Some((now, true));
                    }
                }
                None => {
                    if self.snd_nxt < self.send_limit() {
                        out.push(SenderOut::Send {
                            seq: self.snd_nxt,
                            rtx: false,
                        });
                        self.snd_nxt += 1;
                        self.segments_sent += 1;
                    } else {
                        break;
                    }
                }
            }
        }
    }

    /// Handle a retransmission-timer firing with generation `gen`. Stale
    /// generations are ignored.
    pub fn on_rto(&mut self, gen: u64, now: SimTime, out: &mut Vec<SenderOut>) {
        if gen != self.rto_gen || !self.rto_armed || self.completed {
            return;
        }
        if self.flight() == 0 {
            self.rto_armed = false;
            return;
        }
        self.timeouts += 1;
        // Classic timeout response: collapse to one segment, halve
        // ssthresh, retransmit the head, go-back-N for the rest (they will
        // be resent as the window reopens because snd_nxt rewinds).
        self.ssthresh = (self.flight() as f64 / 2.0).max(2.0);
        self.cwnd = 1.0;
        self.recovery = None;
        self.dupacks = 0;
        self.sacked.clear();
        self.rtx_marked.clear();
        self.snd_nxt = self.snd_una;
        self.backoff += 1;
        out.push(SenderOut::Send {
            seq: self.snd_una,
            rtx: true,
        });
        self.segments_sent += 1;
        self.retransmits += 1;
        self.snd_nxt += 1;
        self.una_sent_at = Some((now, true));
        self.arm_rto(now, out);
    }
}

fn sim_dur(secs: f64) -> badabing_sim::time::SimDuration {
    badabing_sim::time::SimDuration::from_secs_f64(secs)
}

/// The receiver: cumulative ACK with out-of-order buffering. Emits one ACK
/// per received data segment (immediate ACKing, as the testbed's Linux 2.4
/// receivers effectively did under load via quick-ACK mode).
#[derive(Debug, Clone, Default)]
pub struct ReceiverConn {
    rcv_nxt: u64,
    ooo: std::collections::BTreeSet<u64>,
    received: u64,
    duplicates: u64,
    /// Most recently buffered out-of-order segment (its block is
    /// reported first, per RFC 2018).
    last_ooo: Option<u64>,
}

impl ReceiverConn {
    /// New receiver expecting segment 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Next expected segment.
    pub fn rcv_nxt(&self) -> u64 {
        self.rcv_nxt
    }

    /// Distinct in-order segments delivered so far.
    pub fn received(&self) -> u64 {
        self.received
    }

    /// Duplicate segments seen.
    pub fn duplicates(&self) -> u64 {
        self.duplicates
    }

    /// Process an arriving data segment, returning the cumulative ACK to
    /// send back (the next expected segment index).
    pub fn on_data(&mut self, seq: u64) -> u64 {
        if seq < self.rcv_nxt || self.ooo.contains(&seq) {
            self.duplicates += 1;
            return self.rcv_nxt;
        }
        if seq == self.rcv_nxt {
            self.rcv_nxt += 1;
            self.received += 1;
            // Drain any contiguous out-of-order run (already counted in
            // `received` when first buffered).
            while self.ooo.remove(&self.rcv_nxt) {
                self.rcv_nxt += 1;
            }
        } else {
            self.ooo.insert(seq);
            self.last_ooo = Some(seq);
            self.received += 1;
        }
        if self.ooo.is_empty() {
            self.last_ooo = None;
        }
        self.rcv_nxt
    }

    /// The receiver's SACK blocks: up to three `[start, end)` ranges of
    /// buffered out-of-order segments, the block containing the most
    /// recently arrived segment first (RFC 2018's ordering rule). Returns
    /// the fixed-size array plus the valid count, matching the packet
    /// encoding.
    pub fn sack_blocks(&self) -> ([(u64, u64); 3], u8) {
        let mut blocks = [(0u64, 0u64); 3];
        if self.ooo.is_empty() {
            return (blocks, 0);
        }
        // Contiguous ranges of the out-of-order set, ascending.
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for &seq in &self.ooo {
            match ranges.last_mut() {
                Some(last) if seq == last.1 => last.1 = seq + 1,
                _ => ranges.push((seq, seq + 1)),
            }
        }
        // Put the range holding the newest arrival first.
        if let Some(last) = self.last_ooo {
            if let Some(pos) = ranges.iter().position(|&(s, e)| (s..e).contains(&last)) {
                let first = ranges.remove(pos);
                ranges.insert(0, first);
            }
        }
        let n = ranges.len().min(3);
        blocks[..n].copy_from_slice(&ranges[..n]);
        (blocks, n as u8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs_f64(s)
    }

    /// Drive a sender and receiver over a lossless, fixed-RTT "network",
    /// returning the time each segment was first sent.
    fn run_lossless(total: u64, rtt: f64) -> (SenderConn, f64) {
        let cfg = TcpConfig {
            total_segments: Some(total),
            ..Default::default()
        };
        let mut snd = SenderConn::new(cfg);
        let mut rcv = ReceiverConn::new();
        let mut out = Vec::new();
        let mut now = 0.0;
        snd.open(t(now), &mut out);
        let mut in_flight: Vec<u64> = Vec::new();
        let mut completed = false;
        for _ in 0..100_000 {
            // Collect sends.
            for ev in out.drain(..) {
                match ev {
                    SenderOut::Send { seq, .. } => in_flight.push(seq),
                    SenderOut::Completed => completed = true,
                    SenderOut::ArmRto { .. } => {}
                }
            }
            if completed {
                break;
            }
            assert!(
                !in_flight.is_empty(),
                "deadlock: nothing in flight at t={now}"
            );
            // One RTT later, everything sent this round is acked.
            now += rtt;
            let batch: Vec<u64> = std::mem::take(&mut in_flight);
            for seq in batch {
                let ack = rcv.on_data(seq);
                snd.on_ack(ack, t(now), &mut out);
            }
        }
        assert!(completed, "transfer did not complete");
        (snd, now)
    }

    #[test]
    fn lossless_transfer_completes_without_retransmits() {
        let (snd, _) = run_lossless(1000, 0.1);
        assert_eq!(snd.retransmits(), 0);
        assert_eq!(snd.timeouts(), 0);
        assert_eq!(snd.segments_sent(), 1000);
        assert!(snd.is_completed());
        assert_eq!(snd.flight(), 0);
    }

    #[test]
    fn slow_start_doubles_window_per_rtt() {
        // With init_cwnd=2, lossless rounds deliver 2,4,8,... segments.
        let cfg = TcpConfig {
            total_segments: None,
            ..Default::default()
        };
        let mut snd = SenderConn::new(cfg);
        let mut rcv = ReceiverConn::new();
        let mut out = Vec::new();
        snd.open(t(0.0), &mut out);
        let sent_round0: Vec<u64> = drain_sends(&mut out);
        assert_eq!(sent_round0, vec![0, 1]);
        for (round, expect) in [(1usize, 4usize), (2, 8), (3, 16)] {
            let now = t(0.1 * round as f64);
            let prev: Vec<u64> = sent_round0.clone(); // placeholder for clarity
            let _ = prev;
            // Ack everything currently outstanding, one ack per segment.
            let mut sends = Vec::new();
            let flight_start = snd.snd_una;
            let flight_end = snd.snd_nxt;
            for seq in flight_start..flight_end {
                let ack = rcv.on_data(seq);
                snd.on_ack(ack, now, &mut out);
                sends.extend(drain_sends(&mut out));
            }
            assert_eq!(sends.len(), expect, "round {round}");
        }
    }

    fn drain_sends(out: &mut Vec<SenderOut>) -> Vec<u64> {
        let mut v = Vec::new();
        out.retain(|ev| match ev {
            SenderOut::Send { seq, .. } => {
                v.push(*seq);
                false
            }
            _ => true,
        });
        v
    }

    #[test]
    fn triple_dupack_triggers_fast_retransmit_and_halving() {
        let mut snd = SenderConn::new(TcpConfig {
            init_cwnd: 10.0,
            init_ssthresh: 8.0, // start in congestion avoidance
            ..Default::default()
        });
        let mut out = Vec::new();
        snd.open(t(0.0), &mut out);
        let sent = drain_sends(&mut out);
        assert_eq!(sent.len(), 10);
        // Segment 0 lost; acks for 1..=3 are dupacks of 0.
        for _ in 0..2 {
            snd.on_ack(0, t(0.1), &mut out);
            assert!(drain_sends(&mut out).is_empty());
        }
        snd.on_ack(0, t(0.1), &mut out);
        let rtx = drain_sends(&mut out);
        assert_eq!(rtx, vec![0], "third dupack retransmits the head");
        assert_eq!(snd.retransmits(), 1);
        assert!(
            (snd.ssthresh() - 5.0).abs() < 1e-9,
            "ssthresh = flight/2 = 5"
        );
        // Full ACK exits recovery at cwnd = ssthresh.
        snd.on_ack(10, t(0.2), &mut out);
        assert!((snd.cwnd() - 5.0).abs() < 1e-9, "cwnd deflates to ssthresh");
    }

    #[test]
    fn newreno_partial_ack_retransmits_next_hole() {
        let mut snd = SenderConn::new(TcpConfig {
            init_cwnd: 10.0,
            init_ssthresh: 8.0,
            ..Default::default()
        });
        let mut out = Vec::new();
        snd.open(t(0.0), &mut out);
        drain_sends(&mut out);
        // Segments 0 and 4 lost. Dupacks arrive for 0.
        for _ in 0..3 {
            snd.on_ack(0, t(0.1), &mut out);
        }
        assert_eq!(drain_sends(&mut out), vec![0]);
        // Retransmitted 0 arrives; receiver now has 0..=3 but not 4:
        // partial ack of 4 (recovery point is 10).
        snd.on_ack(4, t(0.2), &mut out);
        let sends = drain_sends(&mut out);
        assert!(
            sends.contains(&4),
            "partial ack retransmits the next hole, got {sends:?}"
        );
        // Full ack finally exits recovery at cwnd = ssthresh, and the
        // infinite source immediately refills the (deflated) window.
        snd.on_ack(10, t(0.3), &mut out);
        assert!((snd.cwnd() - snd.ssthresh()).abs() < 1e-9);
        let refill = drain_sends(&mut out);
        assert_eq!(refill.len(), snd.cwnd().floor() as usize);
        assert_eq!(snd.flight(), refill.len() as u64);
    }

    #[test]
    fn rto_collapses_window_and_backs_off() {
        let mut snd = SenderConn::new(TcpConfig {
            init_cwnd: 8.0,
            ..Default::default()
        });
        let mut out = Vec::new();
        snd.open(t(0.0), &mut out);
        drain_sends(&mut out);
        let gen = last_rto_gen(&mut out).expect("rto armed on first send");
        snd.on_rto(gen, t(1.0), &mut out);
        assert_eq!(snd.timeouts(), 1);
        assert!((snd.cwnd() - 1.0).abs() < 1e-9);
        let sends = drain_sends(&mut out);
        assert_eq!(sends, vec![0], "timeout retransmits the head only");
        // The next timeout doubles the backoff: verify the armed interval grew.
        let gen2 = last_rto_gen(&mut out).expect("rto re-armed");
        assert!(gen2 > gen);
    }

    fn last_rto_gen(out: &mut Vec<SenderOut>) -> Option<u64> {
        let mut gen = None;
        out.retain(|ev| match ev {
            SenderOut::ArmRto { gen: g, .. } => {
                gen = Some(*g);
                false
            }
            _ => true,
        });
        gen
    }

    #[test]
    fn stale_rto_generation_is_ignored() {
        let mut snd = SenderConn::new(TcpConfig::default());
        let mut out = Vec::new();
        snd.open(t(0.0), &mut out);
        drain_sends(&mut out);
        let gen = last_rto_gen(&mut out).unwrap();
        // An ack restarts the timer → new generation.
        snd.on_ack(1, t(0.05), &mut out);
        drain_sends(&mut out);
        let gen2 = last_rto_gen(&mut out);
        // Old timer fires late: must be a no-op.
        snd.on_rto(gen, t(1.0), &mut out);
        assert_eq!(snd.timeouts(), 0);
        assert!(gen2.is_none() || gen2.unwrap() > gen);
    }

    #[test]
    fn rwnd_caps_the_window() {
        let mut snd = SenderConn::new(TcpConfig {
            rwnd_segments: 4,
            init_cwnd: 100.0,
            ..Default::default()
        });
        let mut out = Vec::new();
        snd.open(t(0.0), &mut out);
        assert_eq!(drain_sends(&mut out).len(), 4);
    }

    #[test]
    fn finite_transfer_stops_at_total() {
        let mut snd = SenderConn::new(TcpConfig {
            total_segments: Some(3),
            init_cwnd: 100.0,
            ..Default::default()
        });
        let mut out = Vec::new();
        snd.open(t(0.0), &mut out);
        assert_eq!(drain_sends(&mut out).len(), 3);
        snd.on_ack(3, t(0.1), &mut out);
        assert!(snd.is_completed());
        assert!(out.iter().any(|e| matches!(e, SenderOut::Completed)));
    }

    #[test]
    fn receiver_reorders_and_acks_cumulatively() {
        let mut rcv = ReceiverConn::new();
        assert_eq!(rcv.on_data(0), 1);
        assert_eq!(rcv.on_data(2), 1, "gap: still expecting 1");
        assert_eq!(rcv.on_data(3), 1);
        assert_eq!(rcv.on_data(1), 4, "hole filled: cumulative jump");
        assert_eq!(rcv.received(), 4);
        assert_eq!(rcv.duplicates(), 0);
    }

    #[test]
    fn receiver_counts_duplicates() {
        let mut rcv = ReceiverConn::new();
        rcv.on_data(0);
        assert_eq!(rcv.on_data(0), 1);
        assert_eq!(rcv.duplicates(), 1);
        rcv.on_data(5);
        assert_eq!(rcv.on_data(5), 1);
        assert_eq!(rcv.duplicates(), 2);
    }

    #[test]
    fn receiver_reports_sack_blocks_newest_first() {
        let mut rcv = ReceiverConn::new();
        rcv.on_data(0); // in order
        rcv.on_data(3);
        rcv.on_data(4);
        rcv.on_data(8);
        let (blocks, n) = rcv.sack_blocks();
        assert_eq!(n, 2);
        // 8 arrived last → its block first, then [3,5).
        assert_eq!(blocks[0], (8, 9));
        assert_eq!(blocks[1], (3, 5));
        // Filling the hole drains the set; no blocks remain after full
        // reassembly.
        rcv.on_data(1);
        rcv.on_data(2);
        let (_, n2) = rcv.sack_blocks();
        assert_eq!(n2, 1, "block [8,9) still outstanding");
        for s in 5..8 {
            rcv.on_data(s);
        }
        assert_eq!(rcv.sack_blocks().1, 0);
    }

    #[test]
    fn receiver_caps_blocks_at_three() {
        let mut rcv = ReceiverConn::new();
        for s in [2u64, 4, 6, 8, 10] {
            rcv.on_data(s);
        }
        let (_, n) = rcv.sack_blocks();
        assert_eq!(n, 3);
    }

    /// Lossy one-RTT loop: segments in `lost` are dropped on their first
    /// transmission only. Returns the sender after the transfer completes
    /// (or panics after too many rounds).
    fn run_lossy_sack(total: u64, lost: &[u64], sack: bool) -> SenderConn {
        let cfg = TcpConfig {
            total_segments: Some(total),
            init_cwnd: 20.0,
            init_ssthresh: 18.0,
            sack,
            ..Default::default()
        };
        let mut snd = SenderConn::new(cfg);
        let mut rcv = ReceiverConn::new();
        let mut out = Vec::new();
        let mut now = 0.0;
        snd.open(t(now), &mut out);
        let mut dropped: std::collections::HashSet<u64> = Default::default();
        for _round in 0..200 {
            now += 0.1;
            // Deliver this round's sends (dropping scripted first-time
            // losses), one ACK per delivered segment.
            let sends = drain_sends(&mut out);
            if sends.is_empty() {
                // Nothing in flight delivered an ACK: fire the RTO.
                let gen = last_rto_gen(&mut out).unwrap_or(snd.rto_gen);
                now += 1.0;
                snd.on_rto(gen, t(now), &mut out);
                continue;
            }
            for seq in sends {
                if lost.contains(&seq) && !dropped.contains(&seq) {
                    dropped.insert(seq);
                    continue;
                }
                let ack = rcv.on_data(seq);
                let (blocks, n) = rcv.sack_blocks();
                snd.on_ack_sack(ack, &blocks[..usize::from(n)], t(now), &mut out);
                if snd.is_completed() {
                    return snd;
                }
            }
        }
        panic!(
            "transfer did not complete; una={}, nxt={}",
            snd.snd_una, snd.snd_nxt
        );
    }

    #[test]
    fn sack_repairs_multi_loss_window_without_timeout() {
        // Three scattered losses in the initial 18-segment window: Reno
        // (NewReno) needs a partial-ACK round per hole; SACK repairs them
        // all from the scoreboard with no RTO.
        let snd = run_lossy_sack(60, &[2, 7, 11], true);
        assert_eq!(snd.timeouts(), 0, "SACK should avoid the RTO");
        assert_eq!(snd.retransmits(), 3, "exactly the three lost segments");
    }

    #[test]
    fn reno_and_sack_both_recover_but_sack_never_times_out() {
        let sack = run_lossy_sack(60, &[2, 7, 11], true);
        let reno = run_lossy_sack(60, &[2, 7, 11], false);
        // Both complete the transfer with exactly the lost segments
        // retransmitted (NewReno serializes them via partial ACKs; SACK
        // batches them), but only SACK is guaranteed RTO-free here.
        assert_eq!(sack.timeouts(), 0);
        assert!(reno.retransmits() >= 3);
        assert_eq!(sack.retransmits(), 3);
        assert!(sack.is_completed() && reno.is_completed());
    }

    #[test]
    fn sack_single_loss_behaves_like_fast_retransmit() {
        let snd = run_lossy_sack(40, &[5], true);
        assert_eq!(snd.timeouts(), 0);
        assert_eq!(snd.retransmits(), 1);
    }

    #[test]
    fn sack_scoreboard_prunes_below_una() {
        let cfg = TcpConfig {
            sack: true,
            init_cwnd: 10.0,
            ..Default::default()
        };
        let mut snd = SenderConn::new(cfg);
        let mut out = Vec::new();
        snd.open(t(0.0), &mut out);
        drain_sends(&mut out);
        // Blocks for 3..6 while ack is still 0.
        snd.on_ack_sack(0, &[(3, 6)], t(0.1), &mut out);
        assert_eq!(snd.sacked.len(), 3);
        // Cumulative ack to 6 covers them all.
        snd.on_ack_sack(6, &[], t(0.2), &mut out);
        assert!(snd.sacked.is_empty());
    }

    #[test]
    fn rtt_estimator_converges_and_clamps() {
        let mut e = RttEstimator::new(0.2, 60.0);
        assert!((e.rto() - 1.0).abs() < 1e-9, "pre-sample RTO is 1s");
        for _ in 0..50 {
            e.sample(0.1);
        }
        // Stable 100 ms RTT: RTO collapses to the 200 ms floor.
        assert!((e.rto() - 0.2).abs() < 1e-9, "rto was {}", e.rto());
        e.sample(10.0);
        assert!(e.rto() > 1.0, "a huge sample raises the RTO");
    }

    #[test]
    fn ack_beyond_snd_nxt_is_ignored() {
        let mut snd = SenderConn::new(TcpConfig::default());
        let mut out = Vec::new();
        snd.open(t(0.0), &mut out);
        drain_sends(&mut out);
        snd.on_ack(1_000_000, t(0.1), &mut out);
        assert_eq!(snd.flight(), 2, "bogus ack changed nothing");
    }
}
