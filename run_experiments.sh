#!/bin/bash
# Regenerates every table and figure at the paper's durations.
# Output: results/*.csv and results/full_run.log
set -u
cd "$(dirname "$0")"
BIN=./target/release
LOG=results/full_run.log
mkdir -p results
: > "$LOG"
for exp in fig4_queue_tcp fig5_queue_cbr fig6_queue_web \
           tab1_zing_tcp tab2_zing_cbr tab3_zing_web \
           fig7_probe_size fig8_probe_impact fig9_thresholds \
           tab4_badabing_cbr tab5_badabing_multi tab6_badabing_web \
           tab7_duration_n tab8_tool_compare variance_model \
           ablation_probe_params ablation_buffer_model ablation_red ablation_multihop \
           episode_coverage delay_profile ablation_onoff ablation_sack; do
  echo "=== running $exp ===" | tee -a "$LOG"
  start=$(date +%s); $BIN/$exp "$@" >> "$LOG" 2>&1; echo "[$exp took $(( $(date +%s) - start ))s]" >> "$LOG"
done
echo "all experiments complete" | tee -a "$LOG"
