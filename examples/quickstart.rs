//! Quickstart: measure loss episodes on a simulated congested path.
//!
//! Builds the paper's dumbbell testbed, drives it with CBR cross traffic
//! that manufactures 68 ms loss episodes every ~10 s, runs BADABING at
//! p = 0.3 for two minutes, and compares the tool's estimates against the
//! monitor's ground truth.
//!
//! Run with: `cargo run --release --example quickstart`

use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_probe::report::ToolReport;
use badabing_sim::packet::FlowId;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_traffic::cbr::{attach_cbr, CbrEpisodeConfig};

fn main() {
    let seed = 1;

    // 1. The testbed: OC3 bottleneck, 100 ms buffer, 50 ms propagation
    //    each way — the paper's Figure 3 in one call.
    let mut db = Dumbbell::standard();

    // 2. Cross traffic: constant-duration loss episodes (the Iperf
    //    scenario of §4.2).
    attach_cbr(
        &mut db,
        FlowId(1),
        CbrEpisodeConfig::paper_default(),
        seeded(seed, "traffic"),
    );

    // 3. The tool: 3×600-byte probes, experiments started with
    //    probability p = 0.3 per 5 ms slot, thresholds from the paper's
    //    recommendations.
    let cfg = BadabingConfig::paper_default(0.3);
    let n_slots = 24_000; // 120 s of 5 ms slots
    let harness =
        BadabingHarness::attach(&mut db, cfg, n_slots, FlowId(999), seeded(seed, "probe"));

    // 4. Run, then compare tool vs truth.
    println!("running {:.0}s of virtual time...", harness.horizon_secs());
    db.run_for(harness.horizon_secs() + 1.0);

    let truth = db.ground_truth(harness.horizon_secs());
    let analysis = harness.analyze(&db.sim);

    println!("\n{}", ToolReport::header());
    println!(
        "{}",
        ToolReport::from_truth("true values", &truth).fmt_row()
    );
    println!(
        "{}",
        ToolReport::from_badabing("badabing (p=0.3)", &analysis).fmt_row()
    );

    println!(
        "\nexperiments: {}   probes with loss: {}   marked by delay rule: {}",
        analysis.log.len(),
        analysis.detector.probes_with_loss,
        analysis.detector.marked_by_delay
    );
    println!(
        "validation: {} (boundary discrepancy {:.2}, violations {})",
        if analysis.validation.passes(0.25) {
            "PASS"
        } else {
            "FLAGGED"
        },
        analysis.validation.boundary_discrepancy(),
        analysis.validation.violations()
    );
}
