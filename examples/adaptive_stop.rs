//! Open-ended measurement with a stopping criterion (§5.1, §7).
//!
//! Instead of fixing the run length N up front, measure in rounds and let
//! the controller decide: it stops when the §7 accuracy model — fed by
//! the *measured* loss-event rate — says the duration estimate's
//! predicted spread is within target, and it aborts if the §5.4
//! validation symmetries break.
//!
//! Run with: `cargo run --release --example adaptive_stop`

use badabing_core::adaptive::{AdaptiveConfig, AdaptiveController, Verdict};
use badabing_core::config::BadabingConfig;
use badabing_core::streaming::StreamingEstimator;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::packet::FlowId;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_traffic::cbr::{attach_cbr, CbrEpisodeConfig};

const ROUND_SECS: f64 = 60.0;
const MAX_ROUNDS: usize = 30;

fn main() {
    let seed = 5;
    let cfg = BadabingConfig::paper_default(0.3);
    let controller = AdaptiveController::new(AdaptiveConfig {
        target_duration_stddev_slots: 4.0,
        min_boundary_events: 20,
        ..Default::default()
    });

    // Provision the harness for the longest run we might need; the
    // controller decides where we actually stop.
    let mut db = Dumbbell::standard();
    attach_cbr(
        &mut db,
        FlowId(1),
        CbrEpisodeConfig::paper_default(),
        seeded(seed, "cbr"),
    );
    let max_slots = (MAX_ROUNDS as f64 * ROUND_SECS / cfg.slot_secs) as u64;
    let harness = BadabingHarness::attach(&mut db, cfg, max_slots, FlowId(999), seeded(seed, "bb"));

    println!(
        "measuring in {ROUND_SECS:.0}s rounds at p = {} (target sd ≤ {} slots)\n",
        cfg.p,
        controller.config().target_duration_stddev_slots
    );

    for round in 1..=MAX_ROUNDS {
        db.run_for(round as f64 * ROUND_SECS);
        // Re-reduce the (growing) log each round; the streaming estimator
        // is cheap and gives the controller its run-time quantities.
        let analysis = harness.analyze(&db.sim);
        let mut stream = StreamingEstimator::new(cfg.p, cfg.slot_secs);
        for o in analysis.log.outcomes() {
            stream.push(o);
        }
        let sd = stream.predicted_duration_stddev();
        println!(
            "round {round:>2}: {:>6} experiments, boundaries {:>3}, L̂ {:>9}, predicted sd {:>7}",
            stream.len(),
            stream.validation().n01 + stream.validation().n10,
            fmt3(stream.loss_event_rate()),
            fmt3(sd),
        );
        match controller.assess(&stream) {
            Verdict::Continue => continue,
            Verdict::Converged => {
                println!("\nconverged after {:.0}s:", round as f64 * ROUND_SECS);
                println!("  frequency: {}", fmt3(stream.estimates().frequency()));
                println!(
                    "  duration:  {} s",
                    fmt3(stream.estimates().duration_secs_basic())
                );
                let truth = db.ground_truth(round as f64 * ROUND_SECS);
                println!(
                    "  (truth:    {:.4} / {:.3} s)",
                    truth.frequency(),
                    truth.mean_duration_secs()
                );
                return;
            }
            Verdict::Invalidated { reason } => {
                println!("\nrun invalidated: {reason}");
                return;
            }
            Verdict::Exhausted => break,
        }
    }
    println!("\nstopped at the round budget without converging");
}

fn fmt3(v: Option<f64>) -> String {
    v.map_or_else(|| "-".into(), |x| format!("{x:.4}"))
}
