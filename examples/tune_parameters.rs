//! Parameter tuning: the accuracy / impact / timeliness trade-off.
//!
//! §7 of the paper gives the knobs: probe rate `p` trades network impact
//! for accuracy, run length `N` trades timeliness, and
//! `StdDev(D̂) ≈ 1/√(pNL)` predicts what a configuration buys you. This
//! example sweeps `p` on a fixed scenario, reports offered load, the §5.4
//! validation verdict, and the measured estimates, and shows the model's
//! predicted run length for a target precision.
//!
//! Run with: `cargo run --release --example tune_parameters`

use badabing_core::config::{recommended_alpha, recommended_tau, BadabingConfig};
use badabing_core::validate::required_slots;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::packet::FlowId;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_traffic::cbr::{attach_cbr, CbrEpisodeConfig};

const SECS: f64 = 240.0;
const SEED: u64 = 11;

fn main() {
    println!("sweeping p on {SECS:.0}s of CBR loss episodes (68 ms every ~10 s)\n");
    println!(
        "{:>4} {:>9} {:>9} {:>9} {:>10} {:>10} {:>11}",
        "p", "load kb/s", "alpha", "tau ms", "est freq", "est dur s", "validation"
    );

    let mut episode_rate_per_slot = None;
    for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
        let cfg = BadabingConfig::paper_default(p);
        let mut db = Dumbbell::standard();
        attach_cbr(
            &mut db,
            FlowId(1),
            CbrEpisodeConfig::paper_default(),
            seeded(SEED, "cbr"),
        );
        let n_slots = (SECS / cfg.slot_secs) as u64;
        let h = BadabingHarness::attach(&mut db, cfg, n_slots, FlowId(999), seeded(SEED, "bb"));
        db.run_for(SECS + 1.0);
        let truth = db.ground_truth(SECS);
        episode_rate_per_slot = Some(truth.episodes.len() as f64 / n_slots as f64);
        let a = h.analyze(&db.sim);
        println!(
            "{:>4.1} {:>9.0} {:>9.2} {:>9.1} {:>10.4} {:>10.3} {:>11}",
            p,
            cfg.offered_load_bps() / 1000.0,
            recommended_alpha(p),
            recommended_tau(p, cfg.slot_secs) * 1000.0,
            a.frequency().unwrap_or(0.0),
            a.duration_secs().unwrap_or(0.0),
            if a.validation.passes(0.25) {
                "pass"
            } else {
                "flagged"
            },
        );
    }

    // The §7 sizing rule, inverted: how long must a run be for a duration
    // standard deviation of 2 slots at each p?
    if let Some(l) = episode_rate_per_slot {
        println!("\nloss-event rate L ≈ {l:.6} per slot on this path");
        println!("run length needed for StdDev(D-hat) ≈ 2 slots, by p:");
        for p in [0.1, 0.3, 0.5, 0.7, 0.9] {
            let n = required_slots(p, l, 2.0);
            println!("  p={p:<4} N ≈ {:>9.0} slots ≈ {:>6.0} s", n, n * 0.005);
        }
    }
}
