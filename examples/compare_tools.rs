//! Compare BADABING with Poisson probing (ZING) on the same path — the
//! Table 8 experiment in miniature.
//!
//! Both tools measure a dumbbell carrying Harpoon-like web traffic; ZING
//! runs at a rate matched to BADABING's measured probe load, so the
//! comparison is load-for-load fair.
//!
//! Run with: `cargo run --release --example compare_tools`

use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::{BadabingHarness, BadabingProber};
use badabing_probe::report::ToolReport;
use badabing_probe::zing::{attach_zing, zing_report, ZingConfig};
use badabing_sim::packet::FlowId;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_traffic::web::{attach_web, WebConfig};

const SECS: f64 = 300.0;
const SEED: u64 = 7;

fn badabing_run() -> (ToolReport, ToolReport, f64) {
    let mut db = Dumbbell::standard();
    attach_web(
        &mut db,
        WebConfig::paper_default(),
        1 << 16,
        seeded(SEED, "web"),
    );
    let cfg = BadabingConfig::paper_default(0.3);
    let n_slots = (SECS / cfg.slot_secs) as u64;
    let h = BadabingHarness::attach(
        &mut db,
        cfg,
        n_slots,
        FlowId(0xFFFF_0000),
        seeded(SEED, "bb"),
    );
    db.run_for(SECS + 1.0);
    let truth = db.ground_truth(SECS);
    let analysis = h.analyze(&db.sim);
    let packets: u64 = db
        .sim
        .node::<BadabingProber>(h.prober)
        .sent()
        .iter()
        .map(|s| u64::from(s.packets))
        .sum();
    let load = packets as f64 * 600.0 * 8.0 / SECS;
    (
        ToolReport::from_truth("true values", &truth),
        ToolReport::from_badabing("badabing (p=0.3)", &analysis),
        load,
    )
}

fn zing_run(load_bps: f64) -> ToolReport {
    let mut db = Dumbbell::standard();
    attach_web(
        &mut db,
        WebConfig::paper_default(),
        1 << 16,
        seeded(SEED, "web"),
    );
    let zcfg = ZingConfig::with_load_bps(600, load_bps);
    let (p, r) = attach_zing(&mut db, zcfg, FlowId(0xFFFF_0001), seeded(SEED, "zing"));
    db.run_for(SECS + 1.0);
    ToolReport::from_zing(
        format!("zing ({:.0} Hz)", zcfg.rate_hz),
        &zing_report(&db.sim, p, r),
    )
}

fn main() {
    println!("measuring {SECS:.0}s of web-like traffic with both tools...");
    let (truth, badabing, load) = badabing_run();
    let zing = zing_run(load);
    println!("\nprobe load for both tools: {:.0} kb/s", load / 1000.0);
    println!("\n{}", ToolReport::header());
    for r in [truth, badabing, zing] {
        println!("{}", r.fmt_row());
    }
    println!("\nBADABING tracks both frequency and duration; Poisson probing at the");
    println!("same rate underestimates frequency and cannot see episode durations.");
}
