//! A workload study: what do loss episodes look like under web traffic,
//! and does the improved (three-probe) algorithm change the answer?
//!
//! Runs the Harpoon-like scenario, prints the ground-truth episode
//! anatomy (count, sizes, inter-episode gaps), then measures with both
//! the basic and the improved BADABING algorithm and reports the
//! estimated reporting-fidelity ratio r̂ = p₂/p₁ (§5.3) along with both
//! duration estimates.
//!
//! Run with: `cargo run --release --example web_traffic_study`

use badabing_core::config::BadabingConfig;
use badabing_probe::badabing::BadabingHarness;
use badabing_sim::packet::FlowId;
use badabing_sim::topology::Dumbbell;
use badabing_stats::rng::seeded;
use badabing_stats::summary::Summary;
use badabing_traffic::web::{attach_web, WebConfig, WebSessionGenerator};

const SECS: f64 = 300.0;
const SEED: u64 = 21;

fn main() {
    let mut improved_cfg = BadabingConfig::paper_default(0.5).with_improved();
    improved_cfg.owd_window = 5;

    for (label, cfg) in [
        (
            "basic (2-probe experiments)",
            BadabingConfig::paper_default(0.5),
        ),
        ("improved (2- and 3-probe)", improved_cfg),
    ] {
        let mut db = Dumbbell::standard();
        let (gen_id, _) = attach_web(
            &mut db,
            WebConfig::paper_default(),
            1 << 16,
            seeded(SEED, "web"),
        );
        let n_slots = (SECS / cfg.slot_secs) as u64;
        let h = BadabingHarness::attach(
            &mut db,
            cfg,
            n_slots,
            FlowId(0xFFFF_0000),
            seeded(SEED, "bb"),
        );
        db.run_for(SECS + 1.0);

        let truth = db.ground_truth(SECS);
        let a = h.analyze(&db.sim);
        let stats = db.sim.node::<WebSessionGenerator>(gen_id).stats();

        println!("\n=== {label} ===");
        println!(
            "workload: {} transfers started, {} completed, {} surges",
            stats.transfers_started + stats.surge_transfers_started,
            stats.transfers_completed,
            stats.surges
        );
        let mut gaps = Summary::new();
        for w in truth.episodes.windows(2) {
            gaps.push(w[1].start.since(w[0].end).as_secs_f64());
        }
        println!(
            "truth: {} episodes, freq {:.4}, mean duration {:.3}s, mean gap {:.1}s",
            truth.episodes.len(),
            truth.frequency(),
            truth.mean_duration_secs(),
            gaps.mean()
        );
        println!(
            "tool:  freq {:.4}, duration basic {:?}s, improved {:?}s, r-hat {:?}",
            a.frequency().unwrap_or(0.0),
            a.estimates
                .duration_secs_basic()
                .map(|d| (d * 1000.0).round() / 1000.0),
            a.estimates
                .duration_secs_improved()
                .map(|d| (d * 1000.0).round() / 1000.0),
            a.estimates.r_hat().map(|r| (r * 100.0).round() / 100.0),
        );
        println!(
            "validation: {} (01/10 discrepancy {:.2}, forbidden patterns {})",
            if a.validation.passes(0.25) {
                "pass"
            } else {
                "flagged"
            },
            a.validation.boundary_discrepancy(),
            a.validation.violations()
        );
    }
}
