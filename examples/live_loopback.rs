//! The live tool end to end on loopback: real UDP sockets, real timers.
//!
//! Topology (all on 127.0.0.1):
//!
//! ```text
//! sender --UDP--> bottleneck emulator --UDP--> receiver
//! ```
//!
//! The emulator is a user-space drop-tail queue (20 Mb/s, 100 ms of
//! buffer) with scripted overload episodes — the loopback stand-in for
//! the testbed's congested OC3 hop. After the run, the sender manifest
//! and receiver log are joined and analyzed by the same `badabing-core`
//! pipeline the simulator uses.
//!
//! Run with: `cargo run --release --example live_loopback`

use badabing_core::config::BadabingConfig;
use badabing_live::analyze::analyze_run;
use badabing_live::emulator::{Emulator, EmulatorConfig};
use badabing_live::receiver::{start_receiver, ReceiverConfig};
use badabing_live::sender::{run_sender, SenderConfig};
use badabing_stats::rng::seeded;
use std::net::SocketAddr;

fn local0() -> SocketAddr {
    "127.0.0.1:0".parse().expect("static addr")
}

#[tokio::main]
async fn main() -> std::io::Result<()> {
    let session = 0xBADA;
    let run_secs = 20.0;

    // Receiver first (it owns the final port), then the emulator in
    // front of it, then the sender aimed at the emulator.
    let receiver = start_receiver(ReceiverConfig { bind: local0(), session }).await?;
    let emulator = Emulator::start(
        EmulatorConfig {
            episode_mean_gap_secs: 4.0,
            episode_loss_secs: 0.100,
            ..EmulatorConfig::loopback_default(local0(), receiver.local_addr())
        },
        seeded(1, "emulator"),
    )
    .await?;

    let tool = BadabingConfig::paper_default(0.3);
    let sender_cfg = SenderConfig {
        tool,
        n_slots: (run_secs / tool.slot_secs) as u64,
        target: emulator.local_addr(),
        bind: local0(),
        session,
    };

    println!(
        "probing 127.0.0.1 through a {} kb/s emulated bottleneck for {run_secs}s...",
        20_000_000 / 1000
    );
    let manifest = run_sender(sender_cfg, seeded(2, "sender")).await?;

    // Let in-flight datagrams land, then collect.
    tokio::time::sleep(std::time::Duration::from_millis(500)).await;
    let emu_stats = emulator.stop().await;
    let log = receiver.stop().await;

    let analysis = analyze_run(&tool, &manifest, &log);
    println!("\nsent {} packets in {} probes", manifest.packets_sent, manifest.sent.len());
    println!(
        "emulator: {} forwarded, {} dropped, {} scripted episodes",
        emu_stats.forwarded, emu_stats.dropped, emu_stats.episodes
    );
    println!("receiver: {} packets, {} rejected", log.packets, log.rejected);
    println!("\nestimated loss-episode frequency: {:?}", analysis.frequency());
    println!("estimated mean episode duration:  {:?} s", analysis.duration_secs());
    println!(
        "validation: {} ({} experiments, {} probes with loss)",
        if analysis.validation.passes(0.5) { "pass" } else { "flagged" },
        analysis.log.len(),
        analysis.detector.probes_with_loss
    );
    Ok(())
}
