//! The live tool end to end on loopback: real UDP sockets, real timers.
//!
//! Topology (all on 127.0.0.1):
//!
//! ```text
//! sender --UDP--> bottleneck emulator --UDP--> receiver
//! ```
//!
//! The live tool lives in `crates/live` and needs tokio, which the
//! offline build environment cannot fetch — the crate is excluded from
//! the workspace until its dependencies are vendored (see README
//! "Offline builds"). This example therefore only points at the real
//! flow; run it from a network-enabled checkout with `crates/live`
//! restored to the workspace members:
//!
//! ```text
//! cargo run --release --example live_loopback
//! ```
//!
//! The original driver (kept in git history) did:
//!
//! 1. `start_receiver(ReceiverConfig { bind, session })` — owns the
//!    final UDP port;
//! 2. `Emulator::start(EmulatorConfig::loopback_default(..))` — a
//!    user-space 20 Mb/s drop-tail queue with scripted overload
//!    episodes, the loopback stand-in for the congested OC3 hop;
//! 3. `run_sender(SenderConfig { tool, n_slots, target, .. })` — the
//!    BADABING probe process over real sockets;
//! 4. `analyze_run(&tool, &manifest, &log)` — the same `badabing-core`
//!    pipeline the simulator uses, fed from the joined sender manifest
//!    and receiver log.

fn main() {
    eprintln!("live_loopback requires the tokio-based `badabing-live` crate, which is");
    eprintln!("excluded from offline builds. Restore crates/live to the workspace");
    eprintln!("members (and vendor its dependencies) to run this example; the");
    eprintln!("simulator-driven pipeline is exercised by `examples/quickstart.rs`.");
    std::process::exit(2);
}
