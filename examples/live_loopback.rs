//! The live tool end to end on loopback: real UDP sockets, real timers,
//! real control plane.
//!
//! Topology (all on 127.0.0.1):
//!
//! ```text
//! sender --probes--> bottleneck emulator --probes--> receiver
//!    \________________control plane (direct)____________/
//! ```
//!
//! The probe path crosses a user-space 10 Mb/s drop-tail queue with
//! scripted overload episodes (the loopback stand-in for the congested
//! OC3 hop), while the control plane — handshake, heartbeats, FIN and
//! chunked report retrieval — talks to the receiver directly. The sender
//! fetches the receiver's arrival records itself, so the whole
//! measurement, including the §6.1 analysis, runs from one process
//! driving three independent components:
//!
//! ```text
//! cargo run --release --example live_loopback
//! ```

use badabing_core::config::BadabingConfig;
use badabing_live::analyze::analyze_run;
use badabing_live::control::ControlConfig;
use badabing_live::emulator::{Emulator, EmulatorConfig};
use badabing_live::receiver::{start_receiver, ReceiverConfig};
use badabing_live::sender::{run_sender, SenderConfig};
use badabing_metrics::Registry;
use badabing_stats::rng::seeded;
use std::sync::Arc;
use std::time::Duration;

fn main() -> std::io::Result<()> {
    let session = 0x5EED;
    let local0 = "127.0.0.1:0".parse().expect("static addr");

    // 1. The receiver owns the final UDP port and serves the control
    //    plane on it. The idle watchdog is its safety net if the sender
    //    vanishes.
    let recv_metrics = Arc::new(Registry::new("receiver"));
    let receiver = start_receiver(ReceiverConfig {
        idle_timeout: Some(Duration::from_secs(10)),
        metrics: Some(recv_metrics.clone()),
        ..ReceiverConfig::new(local0, session)
    })?;
    eprintln!("receiver listening on {}", receiver.local_addr());

    // 2. The emulated bottleneck sits on the probe path only.
    let emulator = Emulator::start(
        EmulatorConfig {
            rate_bps: 10_000_000,
            buffer_bytes: 125_000,      // 100 ms at 10 Mb/s
            episode_mean_gap_secs: 2.0, // dense episodes for a short demo
            episode_loss_secs: 0.120,
            burst_factor: 4.0,
            ..EmulatorConfig::loopback_default(local0, receiver.local_addr())
        },
        seeded(2, "emu"),
    )?;
    eprintln!("emulator forwarding via {}", emulator.local_addr());

    // 3. The sender probes through the emulator but handshakes with the
    //    receiver directly; it aborts with a partial manifest if the
    //    receiver dies mid-run.
    let tool = BadabingConfig {
        slot_secs: 0.005,
        ..BadabingConfig::paper_default(0.5)
    };
    let send_metrics = Arc::new(Registry::new("sender"));
    let cfg = SenderConfig {
        tool,
        control: Some(ControlConfig::new(receiver.local_addr())),
        metrics: Some(send_metrics.clone()),
        ..SenderConfig::new(tool, 2_000 /* 10 s */, emulator.local_addr(), session)
    };
    eprintln!(
        "sending {} slots of {} ms (offered load ≈ {:.0} kb/s)...",
        cfg.n_slots,
        tool.slot_secs * 1e3,
        tool.offered_load_bps() / 1e3
    );
    let outcome = run_sender(cfg, seeded(3, "probe"))?;
    for note in &outcome.diagnostics {
        eprintln!("warning: {note}");
    }

    let stats = emulator.stop();
    eprintln!(
        "emulator: forwarded {}, dropped {}, {} scripted episodes",
        stats.forwarded, stats.dropped, stats.episodes
    );

    // 4. Analysis runs off the report the sender fetched over the
    //    control plane — no shared memory with the receiver process.
    let log = outcome
        .receiver_log
        .expect("control plane fetches the receiver log");
    eprintln!(
        "receiver reported {} packets ({} rejected, {} duplicates)",
        log.packets, log.rejected, log.duplicates
    );
    let analysis = analyze_run(&tool, &outcome.manifest, &log);
    println!("probes sent:            {}", outcome.manifest.sent.len());
    println!("probe packets lost:     {}", analysis.packets_lost);
    println!(
        "loss-episode frequency: {}",
        analysis
            .frequency()
            .map_or("-".into(), |f| format!("{f:.5}"))
    );
    println!(
        "mean episode duration:  {}",
        analysis
            .duration_secs()
            .map_or("-".into(), |d| format!("{d:.3} s"))
    );
    println!(
        "validation:             {}",
        if analysis.validation.passes(0.25) {
            "PASS"
        } else {
            "FLAGGED"
        }
    );
    println!(
        "\nsender metrics snapshot:\n{}",
        send_metrics.snapshot_json()
    );

    // The receiver exits by itself once the sender acknowledges the full
    // report.
    let _ = receiver.join();
    Ok(())
}
