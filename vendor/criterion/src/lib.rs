//! Offline stand-in for `criterion`.
//!
//! Keeps `cargo bench` working without registry access: each benchmark
//! is timed with a fixed-iteration loop around `std::time::Instant` and
//! reported as mean wall time per iteration (plus throughput when
//! declared). No warm-up analysis, outlier rejection, or HTML reports —
//! this is a smoke-bench harness, not a statistics engine.

use std::time::{Duration, Instant};

/// Iterations per measured benchmark (after one untimed warm-up call).
const DEFAULT_ITERS: u64 = 20;

/// How a group's element count scales per-iteration timing.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Batch sizing hints (accepted, ignored).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration setup.
    SmallInput,
    /// Large per-iteration setup.
    LargeInput,
    /// Setup dominated by the routine.
    PerIteration,
}

/// The top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("group: {name}");
        BenchmarkGroup {
            throughput: None,
            sample_size: DEFAULT_ITERS,
        }
    }
}

/// A named collection of benchmarks sharing throughput settings.
pub struct BenchmarkGroup {
    throughput: Option<Throughput>,
    sample_size: u64,
}

impl BenchmarkGroup {
    /// Declare per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Set the iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, n: usize) {
        self.sample_size = (n as u64).max(1);
    }

    /// Run one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut b = Bencher {
            iters: self.sample_size,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let per_iter = b.elapsed.as_secs_f64() / b.iters.max(1) as f64;
        let rate = match self.throughput {
            Some(Throughput::Elements(n)) => {
                format!("  ({:.0} elem/s)", n as f64 / per_iter.max(1e-12))
            }
            Some(Throughput::Bytes(n)) => {
                format!("  ({:.0} B/s)", n as f64 / per_iter.max(1e-12))
            }
            None => String::new(),
        };
        println!("  {name}: {:.3} ms/iter{rate}", per_iter * 1e3);
        self
    }

    /// End the group (kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; runs and times the routine.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine` over a fixed iteration count.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let _ = routine(); // warm-up, untimed
        let start = Instant::now();
        for _ in 0..self.iters {
            let _ = std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Time `routine` with a fresh `setup()` input per iteration; only
    /// the routine is timed.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            let _ = std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// Collect benchmark functions under one name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($bench:path),+ $(,)?) => {
        fn $name() {
            let mut c = $crate::Criterion::default();
            $( $bench(&mut c); )+
        }
    };
}

/// Entry point running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:ident),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_times_routine() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.throughput(Throughput::Elements(10));
        let mut calls = 0u64;
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        assert!(calls > DEFAULT_ITERS, "routine ran {calls} times");
    }

    #[test]
    fn iter_batched_runs_setup_per_iteration() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(5);
        let mut setups = 0u64;
        g.bench_function("batched", |b| {
            b.iter_batched(
                || {
                    setups += 1;
                    setups
                },
                |x| x * 2,
                BatchSize::SmallInput,
            )
        });
        assert_eq!(setups, 5);
    }
}
