//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io,
//! so the workspace vendors the *subset* of the `rand` 0.10 API it
//! actually uses: the [`Rng`]/[`RngExt`] traits, [`SeedableRng`], and a
//! deterministic [`rngs::StdRng`]. The generator is xoshiro256++ — not
//! the same stream as upstream's ChaCha-based `StdRng`, which is fine
//! here because nothing in the workspace depends on upstream's exact
//! stream, only on determinism given a seed.

/// A source of random 64-bit words. Object-safe so generators can be
/// used through `&mut dyn Rng` or generic `R: Rng + ?Sized` bounds.
pub trait Rng {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be drawn uniformly from a generator, backing
/// [`RngExt::random`].
pub trait Random {
    /// Draw one uniformly random value.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Random for u64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Random for u32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Random for u16 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 48) as u16
    }
}

impl Random for u8 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Random for usize {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Random for i64 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Random for i32 {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32() as i32
    }
}

impl Random for bool {
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Random for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Random for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    fn random<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`RngExt::random_range`] can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw uniformly from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                // Multiply-shift bounded sampling; the tiny modulo bias of
                // a 64-bit source over these spans is irrelevant here.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (self.start as u64).wrapping_add(hi) as $t
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width range: every value is valid.
                    return rng.next_u64() as $t;
                }
                let v = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                (lo as u64).wrapping_add(v) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i32, i64);

macro_rules! float_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for core::ops::Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in random_range");
                let u: $t = Random::random(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange for core::ops::RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range in random_range");
                let u: $t = Random::random(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

float_sample_range!(f32, f64);

/// Convenience draws layered over [`Rng`], mirroring rand's extension
/// trait of the same name.
pub trait RngExt: Rng {
    /// Draw a uniformly random value of type `T`.
    fn random<T: Random>(&mut self) -> T {
        T::random(self)
    }

    /// Draw uniformly from `range`.
    fn random_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// A Bernoulli trial succeeding with probability `p` (clamped to
    /// `[0, 1]`).
    fn random_bool(&mut self, p: f64) -> bool {
        let u: f64 = self.random();
        u < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Generators constructible from a fixed-size seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Build from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a single word via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut s = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            s = splitmix64(s);
            let w = s.to_le_bytes();
            chunk.copy_from_slice(&w[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{splitmix64, Rng, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0; 4] {
                // xoshiro must not start from the all-zero state.
                let mut z = 0x9e37_79b9_7f4a_7c15;
                for w in &mut s {
                    z = splitmix64(z);
                    *w = z;
                }
            }
            Self { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = StdRng::from_seed([7; 32]);
        let mut b = StdRng::from_seed([7; 32]);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = StdRng::from_seed([0; 32]);
        let a = r.next_u64();
        let b = r.next_u64();
        assert!(a != 0 || b != 0);
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = r.random();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_sampling_in_bounds() {
        let mut r = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let i = r.random_range(3..17usize);
            assert!((3..17).contains(&i));
            let x = r.random_range(-2.0..5.0f64);
            assert!((-2.0..5.0).contains(&x));
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut r = StdRng::seed_from_u64(3);
        assert!(!r.random_bool(0.0));
        assert!(r.random_bool(1.0));
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = StdRng::seed_from_u64(4);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
