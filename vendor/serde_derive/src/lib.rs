//! No-op `Serialize`/`Deserialize` derives.
//!
//! The offline build cannot fetch serde, and nothing in the workspace's
//! enabled members serializes at runtime (the tokio-based live tool,
//! which did, is gated out until dependencies can be vendored for real).
//! These derives accept the same syntax — including `#[serde(...)]`
//! attributes — and expand to nothing, so the annotations stay in place
//! for the day real serde is restored.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and expands to nothing.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and expands to nothing.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
