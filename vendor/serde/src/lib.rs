//! Offline stand-in for `serde`.
//!
//! Re-exports the no-op `Serialize`/`Deserialize` derive macros so that
//! `use serde::{Deserialize, Serialize};` plus `#[derive(...)]` keep
//! compiling while the build has no registry access. No serialization
//! actually happens anywhere in the enabled workspace members.

pub use serde_derive::{Deserialize, Serialize};
