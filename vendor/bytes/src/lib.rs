//! Offline stand-in for the `bytes` crate.
//!
//! Implements just what `badabing-wire` needs: big-endian (network
//! order) reads via [`Buf`], big-endian writes via [`BufMut`], a growable
//! [`BytesMut`] and a frozen [`Bytes`], both backed by plain `Vec<u8>`.

use std::ops::Deref;

/// Sequential big-endian reads from a byte source.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);
    /// Copy the next `dst.len()` bytes out and advance.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let mut b = [0u8; 1];
        self.copy_to_slice(&mut b);
        b[0]
    }

    /// Read a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let mut b = [0u8; 2];
        self.copy_to_slice(&mut b);
        u16::from_be_bytes(b)
    }

    /// Read a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let mut b = [0u8; 4];
        self.copy_to_slice(&mut b);
        u32::from_be_bytes(b)
    }

    /// Read a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        u64::from_be_bytes(b)
    }

    /// Read a big-endian `i64`.
    fn get_i64(&mut self) -> i64 {
        let mut b = [0u8; 8];
        self.copy_to_slice(&mut b);
        i64::from_be_bytes(b)
    }

    /// Read a big-endian IEEE-754 `f64`.
    fn get_f64(&mut self) -> f64 {
        f64::from_bits(self.get_u64())
    }
}

impl Buf for &[u8] {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        *self = &self[n..];
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(dst.len() <= self.len(), "read past end of buffer");
        dst.copy_from_slice(&self[..dst.len()]);
        *self = &self[dst.len()..];
    }
}

/// Sequential big-endian writes into a growable buffer.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian `i64`.
    fn put_i64(&mut self, v: i64) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian IEEE-754 `f64`.
    fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }
}

/// A growable byte buffer (thin wrapper over `Vec<u8>`).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty buffer with room for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Resize to `new_len`, filling with `value`.
    pub fn resize(&mut self, new_len: usize, value: u8) {
        self.buf.resize(new_len, value);
    }

    /// Convert into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes { buf: self.buf }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

/// An immutable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bytes {
    buf: Vec<u8>,
}

impl Bytes {
    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Self { buf: data.to_vec() }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Copy out as a `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.buf.clone()
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.buf
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(buf: Vec<u8>) -> Self {
        Self { buf }
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_read_roundtrip() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u32(0xDEAD_BEEF);
        b.put_u64(42);
        b.put_u8(7);
        b.put_u16(513);
        let frozen = b.freeze();
        let mut r: &[u8] = &frozen;
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64(), 42);
        assert_eq!(r.get_u8(), 7);
        assert_eq!(r.get_u16(), 513);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn signed_and_float_roundtrip() {
        let mut b = BytesMut::new();
        b.put_i64(-123_456_789);
        b.put_f64(-0.062_5);
        b.put_f64(f64::NAN);
        let mut r: &[u8] = &b;
        assert_eq!(r.get_i64(), -123_456_789);
        assert_eq!(r.get_f64(), -0.062_5);
        assert!(r.get_f64().is_nan());
    }

    #[test]
    fn network_byte_order() {
        let mut b = BytesMut::new();
        b.put_u16(0x0102);
        assert_eq!(&b[..], &[1, 2]);
    }

    #[test]
    fn resize_pads_with_value() {
        let mut b = BytesMut::new();
        b.put_u8(9);
        b.resize(4, 0);
        assert_eq!(&b[..], &[9, 0, 0, 0]);
        assert_eq!(b.freeze().to_vec(), vec![9, 0, 0, 0]);
    }

    #[test]
    #[should_panic(expected = "read past end")]
    fn short_read_panics() {
        let mut r: &[u8] = &[1, 2];
        let _ = r.get_u32();
    }
}
