//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so this crate vendors
//! the small slice of proptest the workspace's property tests use:
//! the [`proptest!`] macro over `arg in strategy` bindings, range and
//! tuple strategies, `any::<T>()`, `collection::vec`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from real proptest, deliberate for size:
//!
//! * **No shrinking.** A failing case panics with the sampled inputs
//!   printed; re-running reproduces it exactly (the generator seed is a
//!   hash of the test's module path and name).
//! * Rejected cases (`prop_assume!`) are retried up to 20× the case
//!   budget rather than tracked against a global rejection quota.

use rand::rngs::StdRng;
use rand::SeedableRng;

pub mod strategy;

pub use strategy::{any, Any, Just, Strategy};

/// The generator handed to strategies.
pub type TestRng = StdRng;

/// FNV-1a over a string; used to derive a stable per-test seed.
pub fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Deterministic generator for one named test.
pub fn new_test_rng(name: &str) -> TestRng {
    StdRng::seed_from_u64(fnv1a(name))
}

/// Test-runner types (`proptest::test_runner` in the real crate).
pub mod test_runner {
    /// Why a test case did not pass.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` failed; resample and try again.
        Reject,
        /// An assertion failed.
        Fail(String),
    }

    /// Subset of proptest's config: just the case budget.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted cases to run per test.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` accepted cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 32 }
        }
    }
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};

    /// A strategy for `Vec`s of `elem` with length drawn from `len`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }
}

/// The usual glob import: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::strategy::{any, Any, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests: each `arg in strategy` binding is sampled per
/// case and the body runs once per accepted case.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[macro_export]
#[doc(hidden)]
macro_rules! __proptest_impl {
    ( ($cfg:expr)
      $( $(#[$meta:meta])*
         fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
      )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cfg: $crate::test_runner::ProptestConfig = $cfg;
                let mut rng = $crate::new_test_rng(concat!(module_path!(), "::", stringify!($name)));
                let mut accepted = 0u32;
                let mut attempts = 0u32;
                while accepted < cfg.cases {
                    attempts += 1;
                    assert!(
                        attempts <= cfg.cases.saturating_mul(20),
                        "proptest: too many rejected cases ({} accepted of {} wanted)",
                        accepted,
                        cfg.cases,
                    );
                    $(let $arg = $crate::strategy::Strategy::sample(&$strat, &mut rng);)+
                    let inputs = format!(
                        concat!($(stringify!($arg), " = {:?}; "),+),
                        $(&$arg),+
                    );
                    let outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                        $body
                        Ok(())
                    })();
                    match outcome {
                        Ok(()) => accepted += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {}
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!("proptest case failed: {msg}\n  inputs: {inputs}");
                        }
                    }
                }
            }
        )*
    };
}

/// `assert!` that reports the case inputs instead of aborting the run.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Fail(format!($($fmt)+)));
        }
    };
}

/// `assert_eq!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{} != {}: {:?} vs {:?}",
                stringify!($a),
                stringify!($b),
                a,
                b
            )));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)+) => {{
        let (a, b) = (&$a, &$b);
        if !(*a == *b) {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{}: {:?} vs {:?}",
                format!($($fmt)+),
                a,
                b
            )));
        }
    }};
}

/// `assert_ne!` variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (a, b) = (&$a, &$b);
        if *a == *b {
            return Err($crate::test_runner::TestCaseError::Fail(format!(
                "{} == {}: both {:?}",
                stringify!($a),
                stringify!($b),
                a
            )));
        }
    }};
}

/// Discard the current case (resampled, not counted as a failure).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u64..17, y in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&y));
        }

        #[test]
        fn vectors_respect_length(v in crate::collection::vec(any::<bool>(), 2..50)) {
            prop_assert!(v.len() >= 2 && v.len() < 50);
        }

        #[test]
        fn tuples_sample_elementwise(t in (0u64..5, 10u32..20)) {
            prop_assert!(t.0 < 5);
            prop_assert!((10..20).contains(&t.1));
        }

        #[test]
        fn assume_rejects_without_failing(x in 0u64..100) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    fn fnv_differs_between_names() {
        assert_ne!(super::fnv1a("a"), super::fnv1a("b"));
    }
}
