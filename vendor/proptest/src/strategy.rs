//! Value-generation strategies.

use crate::TestRng;
use rand::RngExt;

/// Something that can produce values of [`Self::Value`] from a seeded
/// generator. (The real crate's `Strategy` also carries a shrinker; this
/// shim only samples.)
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}

range_strategy!(u8, u16, u32, u64, usize, i32, i64, f32, f64);

/// Marker returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: core::marker::PhantomData<T>,
}

/// Uniform over the whole domain of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy,
{
    Any {
        _marker: core::marker::PhantomData,
    }
}

macro_rules! any_via_random {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                rng.random()
            }
        }
    )*};
}

any_via_random!(bool, u8, u16, u32, u64, usize, i32, i64, f32, f64);

/// Always yields a clone of the same value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.sample(rng), self.1.sample(rng), self.2.sample(rng))
    }
}

/// Built by [`crate::collection::vec`].
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    pub(crate) elem: S,
    pub(crate) len: core::ops::Range<usize>,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        let n = rng.random_range(self.len.clone());
        (0..n).map(|_| self.elem.sample(rng)).collect()
    }
}
